open Hca_machine

(* Flat data layout: everything the per-probe hot path reads lives in
   int/float arrays indexed by PG node id — no [Resource.t] records, no
   per-cluster lists, no boxed floats.  The speculation bookkeeping is
   a preallocated arena (mark/rewind), so an apply/score/undo round
   trip allocates nothing once the arena is warm. *)
type t = {
  problem : Problem.t;
  (* Immutable per-problem caches, shared across clones. *)
  pg_n : int;
  max_in : int;
  regs : int array;  (* regular PG node ids, ascending *)
  is_reg : Bytes.t;  (* per PG node: regular-cluster flag *)
  cap_alus : int array;  (* per PG node capacity components *)
  cap_ags : int array;
  slots_sum : int array;  (* cap alus + ags: the utilisation divisor *)
  slots_issue : int array;  (* max cap alus ags: the issue window *)
  scc : int array;
  (* Per-state solution. *)
  place : int array;  (* problem node -> PG node, -1 when unassigned *)
  flow : Copy_flow.t;
  dem_alus : int array;  (* per-cluster demand, struct-of-arrays *)
  dem_ags : int array;
  fwd_val : int Hca_util.Vec.t;  (* Route-Allocator forwards, push order *)
  fwd_via : int Hca_util.Vec.t;
  mutable carried_cuts : int;
  (* [0] = cached score; [1] = accumulated penalties.  A flat float
     array so the hot-path stores never box. *)
  fl : float array;
  mutable assigned : int;
  (* Per-cluster cost contributions, valid for the window [cache_ii]
     (-1 = stale).  A move touches at most a handful of clusters, so
     [try_assign] refreshes only those instead of re-walking every PG
     regular node per candidate. *)
  node_util : float array;
  node_proj : int array;
  node_fanin : float array;
  mutable cache_ii : int;
  (* In-flight speculative move, if any: the undo scalars live on the
     state, the array-shaped undo trail in the checked-out [scr]
     arena. *)
  mutable sp_active : bool;
  mutable sp_node : int;
  mutable sp_cluster : int;
  mutable sp_dem_alus : int;
  mutable sp_dem_ags : int;
  mutable sp_carried : int;
  mutable sp_cache_ii : int;
  mutable sp_fmark : Copy_flow.mark;
  mutable sp_fwd_len : int;  (* forwards count at [probe_force] time *)
  mutable scr : scratch option;
}

(* The array-shaped speculation arena: preallocated, pooled per domain
   and checked out for the duration of one probe (or one in-flight
   speculation), so the SEE's clones — one per beam survivor — carry
   no scratch arrays at all. *)
and scratch = {
  mutable cap : int;  (* arrays sized for PGs up to this many nodes *)
  mutable spf : float array;  (* [0]/[1]: saved [fl] slots *)
  (* Deduplicated regular clusters the move mutated, with the pre-move
     contribution of each recorded at its arena slot.  [tmask] is the
     membership bitset that makes the dedup O(1). *)
  mutable touched : int array;
  mutable touched_len : int;
  mutable tmask : Hca_util.Bitset.t;
  mutable tr_util : float array;
  mutable tr_proj : int array;
  mutable tr_fanin : float array;
  (* Full-array snapshot for the (cold) move that had to
     [refresh_all]. *)
  mutable sp_full : bool;
  mutable full_util : float array;
  mutable full_proj : int array;
  mutable full_fanin : float array;
}

let grow_scratch s cap =
  s.cap <- cap;
  s.spf <- Array.make 2 0.0;
  s.touched <- Array.make cap 0;
  s.touched_len <- 0;
  s.tmask <- Hca_util.Bitset.create cap;
  s.tr_util <- Array.make cap 0.0;
  s.tr_proj <- Array.make cap 0;
  s.tr_fanin <- Array.make cap 0.0;
  s.full_util <- Array.make cap 0.0;
  s.full_proj <- Array.make cap 0;
  s.full_fanin <- Array.make cap 0.0

(* Domain-local free list: probes of different states interleave
   freely (each checkout is its own arena), and domains never share a
   pool, so no locking is needed. *)
let scratch_pool : scratch list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let acquire_scratch cap =
  let pool = Domain.DLS.get scratch_pool in
  match !pool with
  | s :: rest ->
      pool := rest;
      if s.cap < cap then grow_scratch s cap;
      s
  | [] ->
      let s =
        {
          cap = 0;
          spf = [||];
          touched = [||];
          touched_len = 0;
          tmask = Hca_util.Bitset.create 0;
          tr_util = [||];
          tr_proj = [||];
          tr_fanin = [||];
          sp_full = false;
          full_util = [||];
          full_proj = [||];
          full_fanin = [||];
        }
      in
      grow_scratch s cap;
      s

let release_scratch s =
  let pool = Domain.DLS.get scratch_pool in
  pool := s :: !pool

let problem t = t.problem

let placement t id = if t.place.(id) < 0 then None else Some t.place.(id)

let is_complete t = t.assigned = Problem.size t.problem

let assigned_count t = t.assigned

let flow t = t.flow

(* The accumulators stop at the last regular id; ports past the end
   hold no demand by construction. *)
let demand t c =
  if c >= Array.length t.dem_alus then Resource.zero
  else { Resource.alus = t.dem_alus.(c); ags = t.dem_ags.(c) }

(* Derived from the placement array on demand: only the CLI dump and a
   couple of tests read it, so states carry no cluster->members reverse
   index at all — one less structure to maintain, clone and rewind on
   the probe path. *)
let cluster_nodes t c =
  let acc = ref [] in
  for id = Array.length t.place - 1 downto 0 do
    if t.place.(id) = c then acc := id :: !acc
  done;
  !acc

let forwards t =
  let acc = ref [] in
  for i = 0 to Hca_util.Vec.length t.fwd_val - 1 do
    acc := (Hca_util.Vec.get t.fwd_val i, Hca_util.Vec.get t.fwd_via i) :: !acc
  done;
  !acc (* newest first, like the list it replaced *)

let is_reg t c = c >= 0 && c < t.pg_n && Bytes.unsafe_get t.is_reg c <> '\000'

let create ?(backbone = []) problem =
  let pg = Problem.pg problem in
  let n = Problem.size problem in
  let pg_n = Pattern_graph.size pg in
  let is_reg = Bytes.make pg_n '\000' in
  let cap_alus = Array.make pg_n 0 in
  let cap_ags = Array.make pg_n 0 in
  let slots_sum = Array.make pg_n 0 in
  let slots_issue = Array.make pg_n 0 in
  let regs = ref [] in
  Array.iter
    (fun (nd : Pattern_graph.node) ->
      (match nd.kind with
      | Pattern_graph.Regular ->
          Bytes.set is_reg nd.id '\001';
          regs := nd.id :: !regs
      | Pattern_graph.In_port _ | Pattern_graph.Out_port _ -> ());
      cap_alus.(nd.id) <- nd.capacity.Resource.alus;
      cap_ags.(nd.id) <- nd.capacity.Resource.ags;
      slots_sum.(nd.id) <- nd.capacity.Resource.alus + nd.capacity.Resource.ags;
      slots_issue.(nd.id) <- Resource.issue_slots nd.capacity)
    (Pattern_graph.nodes pg);
  let regs = Array.of_list (List.rev !regs) in
  (* The mutable per-cluster accumulators are only ever indexed by
     regular-node ids (every write is [is_reg]-guarded), and fabric PGs
     number their regular nodes contiguously at the front, so the five
     arrays cloned per beam survivor need [max_reg_id + 1] slots, not
     [pg_n] — the ports at the tail would only ever hold zeros. *)
  let n_dem = max 1 (1 + Array.fold_left max (-1) regs) in
  let flow = Copy_flow.create ~max_in_ports:(Problem.max_in_ports problem) pg in
  List.iter (fun (src, dst) -> Copy_flow.reserve_neighbor flow ~src ~dst) backbone;
  let t =
    {
      problem;
      pg_n;
      max_in = Pattern_graph.max_in pg;
      regs;
      is_reg;
      cap_alus;
      cap_ags;
      slots_sum;
      slots_issue;
      scc = Problem.scc_of problem;
      place = Array.make n (-1);
      flow;
      dem_alus = Array.make n_dem 0;
      dem_ags = Array.make n_dem 0;
      fwd_val = Hca_util.Vec.create ();
      fwd_via = Hca_util.Vec.create ();
      carried_cuts = 0;
      fl = Array.make 2 0.0;
      assigned = 0;
      node_util = Array.make n_dem 0.0;
      node_proj = Array.make n_dem 1;
      node_fanin = Array.make n_dem 0.0;
      cache_ii = -1;
      sp_active = false;
      sp_node = -1;
      sp_cluster = -1;
      sp_dem_alus = 0;
      sp_dem_ags = 0;
      sp_carried = 0;
      sp_cache_ii = -1;
      sp_fmark = Copy_flow.push_mark flow;
      sp_fwd_len = 0;
      scr = None;
    }
  in
  Copy_flow.undo_to_mark t.flow t.sp_fmark;
  Array.iter
    (fun (nd : Problem.node) ->
      match nd.pinned with
      | Some c ->
          t.place.(nd.id) <- c;
          t.assigned <- t.assigned + 1
      | None -> ())
    (Problem.nodes problem);
  t

let clone t =
  if t.sp_active then invalid_arg "State.clone: speculation in flight";
  {
    t with
    place = Array.copy t.place;
    flow = Copy_flow.clone t.flow;
    dem_alus = Array.copy t.dem_alus;
    dem_ags = Array.copy t.dem_ags;
    fwd_val = Hca_util.Vec.copy t.fwd_val;
    fwd_via = Hca_util.Vec.copy t.fwd_via;
    fl = Array.copy t.fl;
    node_util = Array.copy t.node_util;
    node_proj = Array.copy t.node_proj;
    node_fanin = Array.copy t.node_fanin;
    scr = None;
  }
(* [regs]/[is_reg]/capacity caches/[scc] are immutable, so clones
   share them; the speculation scratch is pooled, so clones carry
   none. *)

(* One cluster's cost terms, recomputed from its demand accumulators and
   the flow's O(1) counters.  [id] must be a regular cluster. *)
let refresh_node t ~ii id =
  let slots = t.slots_sum.(id) in
  if slots > 0 then begin
    let used = t.dem_alus.(id) + t.dem_ags.(id) in
    t.node_util.(id) <- float_of_int used /. float_of_int (slots * ii)
  end;
  t.node_proj.(id) <-
    Cost.cluster_mii_flat ~d_alus:t.dem_alus.(id) ~d_ags:t.dem_ags.(id)
      ~c_alus:t.cap_alus.(id) ~c_ags:t.cap_ags.(id)
      ~receives:(Copy_flow.in_pressure t.flow id)
      ~max_in:t.max_in;
  let sat =
    float_of_int (Copy_flow.real_in_count t.flow id)
    /. float_of_int t.max_in
  in
  t.node_fanin.(id) <- sat *. sat

let refresh_all t ~ii =
  for k = 0 to Array.length t.regs - 1 do
    refresh_node t ~ii t.regs.(k)
  done;
  t.cache_ii <- ii

let ensure_cache t ~ii = if t.cache_ii <> ii then refresh_all t ~ii

(* Fold the cached per-cluster terms; same iteration order as a
   from-scratch walk, so incremental and reference costs are
   bit-identical.  [aggregate] builds the summary record for the cold
   API; [score_now] is its allocation-free twin for the probe loop —
   the two loops must mirror each other exactly. *)
let aggregate t ~ii =
  let max_util = ref 0.0 and min_util = ref infinity in
  let projected = ref 1 in
  let fanin_sat = ref 0.0 in
  for k = 0 to Array.length t.regs - 1 do
    let id = t.regs.(k) in
    if t.slots_sum.(id) > 0 then begin
      let util = t.node_util.(id) in
      if util > !max_util then max_util := util;
      if util < !min_util then min_util := util
    end;
    if t.node_proj.(id) > !projected then projected := t.node_proj.(id);
    fanin_sat := !fanin_sat +. t.node_fanin.(id)
  done;
  let min_util = if !min_util = infinity then 0.0 else !min_util in
  {
    Cost.copies = Copy_flow.copy_count t.flow;
    max_util = !max_util;
    util_spread = !max_util -. min_util;
    projected_ii = !projected;
    target_ii = ii;
    used_in_ports = Copy_flow.used_in_ports_count t.flow;
    fanin_sat = !fanin_sat;
    carried_cuts = t.carried_cuts;
  }

let score_now t ~ii ~weights =
  let max_util = ref 0.0 and min_util = ref infinity in
  let projected = ref 1 in
  let fanin_sat = ref 0.0 in
  for k = 0 to Array.length t.regs - 1 do
    let id = t.regs.(k) in
    if t.slots_sum.(id) > 0 then begin
      let util = t.node_util.(id) in
      if util > !max_util then max_util := util;
      if util < !min_util then min_util := util
    end;
    if t.node_proj.(id) > !projected then projected := t.node_proj.(id);
    fanin_sat := !fanin_sat +. t.node_fanin.(id)
  done;
  let min_util = if !min_util = infinity then 0.0 else !min_util in
  Cost.score_flat weights
    ~copies:(Copy_flow.copy_count t.flow)
    ~max_util:!max_util
    ~util_spread:(!max_util -. min_util)
    ~projected_ii:!projected ~target_ii:ii
    ~used_in_ports:(Copy_flow.used_in_ports_count t.flow)
    ~fanin_sat:!fanin_sat ~carried_cuts:t.carried_cuts

let summary t ~ii =
  ensure_cache t ~ii;
  aggregate t ~ii

let cost t = t.fl.(0) +. t.fl.(1)

let add_penalty t p = t.fl.(1) <- t.fl.(1) +. p

let free_issue_slots t ~cluster ~ii =
  (t.slots_issue.(cluster) * ii) - (t.dem_alus.(cluster) + t.dem_ags.(cluster))

(* Route-Allocator hop feasibility: would [via] still fit its resource
   table after spending one ALU slot re-emitting a value?  The flat
   twin of [is_regular && Resource.fits (demand + 1 alu)] — the BFS
   asks this per visited node, so it must not build records. *)
let can_host_forward t ~via ~ii =
  via >= 0 && via < t.pg_n
  && Bytes.unsafe_get t.is_reg via <> '\000'
  &&
  let d_alus = t.dem_alus.(via) + 1 in
  let d_ags = t.dem_ags.(via) in
  d_alus <= t.cap_alus.(via) * ii
  && d_ags <= t.cap_ags.(via) * ii
  && d_alus + d_ags <= t.slots_issue.(via) * ii

let recompute_cost t ~target_ii ~weights =
  refresh_all t ~ii:target_ii;
  t.fl.(0) <- Cost.score weights (aggregate t ~ii:target_ii)

let same_circuit t a b = t.scc.(a) >= 0 && t.scc.(a) = t.scc.(b)

(* Inlined [Resource.fits] on the struct-of-arrays demand. *)
let fits t ~cluster ~d_alus ~d_ags ~ii =
  d_alus <= t.cap_alus.(cluster) * ii
  && d_ags <= t.cap_ags.(cluster) * ii
  && d_alus + d_ags <= t.slots_issue.(cluster) * ii

(* Touched-cluster recording: deduplicated via the bitset, ports
   filtered out at the source (only regular clusters have cost
   contributions to refresh). *)
let touch t s c =
  if
    Bytes.unsafe_get t.is_reg c <> '\000'
    && not (Hca_util.Bitset.mem s.tmask c)
  then begin
    Hca_util.Bitset.set s.tmask c;
    s.touched.(s.touched_len) <- c;
    s.touched_len <- s.touched_len + 1
  end

let clear_touched s =
  for i = 0 to s.touched_len - 1 do
    Hca_util.Bitset.clear s.tmask s.touched.(i)
  done;
  s.touched_len <- 0

(* Route every arc between [node] (going to [cluster]) and its
   already-placed neighbours, recording touched clusters and carried
   cuts.  Returns -1 on success, or the flat [src * pg_n + dst] of the
   first blocked arc — partial mutations are NOT rolled back, the
   caller owns the rewind (or discards the clone).  Hand-rolled
   recursion: the per-probe loop must not allocate closures. *)
let rec route_preds t s cluster = function
  | [] -> -1
  | (e : Problem.edge) :: rest ->
      let src = t.place.(e.src) in
      if src < 0 || src = cluster then route_preds t s cluster rest
      else if Copy_flow.can_add t.flow ~src ~dst:cluster then begin
        Copy_flow.add_copy t.flow ~src ~dst:cluster e.value;
        touch t s cluster;
        if e.distance > 0 || same_circuit t e.src e.dst then
          t.carried_cuts <- t.carried_cuts + 1;
        route_preds t s cluster rest
      end
      else (src * t.pg_n) + cluster

let rec route_succs t s cluster = function
  | [] -> -1
  | (e : Problem.edge) :: rest ->
      let d = t.place.(e.dst) in
      if d < 0 || d = cluster then route_succs t s cluster rest
      else if Copy_flow.can_add t.flow ~src:cluster ~dst:d then begin
        Copy_flow.add_copy t.flow ~src:cluster ~dst:d e.value;
        touch t s d;
        if e.distance > 0 || same_circuit t e.src e.dst then
          t.carried_cuts <- t.carried_cuts + 1;
        route_succs t s cluster rest
      end
      else (cluster * t.pg_n) + d

let route_arcs t s ~node ~cluster =
  let r = route_preds t s cluster (Problem.preds t.problem node) in
  if r >= 0 then r else route_succs t s cluster (Problem.succs t.problem node)

(* Incremental twin of {!recompute_cost}: refresh only the clusters the
   move touched (consumes and clears the arena). *)
let update_cost t s ~target_ii ~weights =
  if t.cache_ii <> target_ii then refresh_all t ~ii:target_ii
  else
    for i = 0 to s.touched_len - 1 do
      refresh_node t ~ii:target_ii s.touched.(i)
    done;
  clear_touched s;
  t.fl.(0) <- score_now t ~ii:target_ii ~weights

let err_assigned = "node already assigned"
let err_not_regular = "target is not a regular cluster"
let err_exhausted = "resource table exhausted under target II"

let try_assign t ~node ~cluster ~ii ~target_ii ~weights =
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error err_assigned
  else if not (is_reg t cluster) then Error err_not_regular
  else
    let d_alus = t.dem_alus.(cluster) + nd.Problem.demand.Resource.alus in
    let d_ags = t.dem_ags.(cluster) + nd.Problem.demand.Resource.ags in
    if not (fits t ~cluster ~d_alus ~d_ags ~ii) then Error err_exhausted
    else begin
      let t' = clone t in
      t'.place.(node) <- cluster;
      t'.dem_alus.(cluster) <- d_alus;
      t'.dem_ags.(cluster) <- d_ags;
      t'.assigned <- t'.assigned + 1;
      let sc = acquire_scratch t.pg_n in
      touch t' sc cluster;
      let blocked = route_arcs t' sc ~node ~cluster in
      if blocked < 0 then begin
        update_cost t' sc ~target_ii ~weights;
        release_scratch sc;
        Ok t'
      end
      else begin
        clear_touched sc;
        release_scratch sc;
        (* The mutated clone is discarded wholesale. *)
        Error
          (Printf.sprintf "no communication pattern %d->%d" (blocked / t.pg_n)
             (blocked mod t.pg_n))
      end
    end

(* Shared by [speculate_assign] and [score_moves]: refresh the touched
   clusters under [target_ii], snapshotting each pre-move contribution
   at its arena slot first (each cluster appears once, so any restore
   order lands on the pre-move values).  The cold cache-miss move
   snapshots the full arrays instead. *)
let refresh_speculative t s ~target_ii =
  if t.cache_ii <> target_ii then begin
    s.sp_full <- true;
    let n_dem = Array.length t.node_util in
    Array.blit t.node_util 0 s.full_util 0 n_dem;
    Array.blit t.node_proj 0 s.full_proj 0 n_dem;
    Array.blit t.node_fanin 0 s.full_fanin 0 n_dem;
    refresh_all t ~ii:target_ii
  end
  else begin
    s.sp_full <- false;
    for i = 0 to s.touched_len - 1 do
      let id = s.touched.(i) in
      s.tr_util.(i) <- t.node_util.(id);
      s.tr_proj.(i) <- t.node_proj.(id);
      s.tr_fanin.(i) <- t.node_fanin.(id);
      refresh_node t ~ii:target_ii id
    done
  end

let restore_speculative t s =
  if s.sp_full then begin
    let n_dem = Array.length t.node_util in
    Array.blit s.full_util 0 t.node_util 0 n_dem;
    Array.blit s.full_proj 0 t.node_proj 0 n_dem;
    Array.blit s.full_fanin 0 t.node_fanin 0 n_dem
  end
  else
    for i = s.touched_len - 1 downto 0 do
      let id = s.touched.(i) in
      t.node_util.(id) <- s.tr_util.(i);
      t.node_proj.(id) <- s.tr_proj.(i);
      t.node_fanin.(id) <- s.tr_fanin.(i)
    done

(* Trail-based twin of {!try_assign}: the same move, the same checks,
   the same arithmetic — applied to [t] itself under the preallocated
   arena instead of a clone.  The member rows are deliberately left
   untouched: no cost term reads them, and the round trip restores the
   state bit for bit without them (property tested against
   [debug_identical]). *)
let speculate_assign t ~node ~cluster ~ii ~target_ii ~weights =
  if t.sp_active then invalid_arg "State.speculate_assign: already in flight";
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error err_assigned
  else if not (is_reg t cluster) then Error err_not_regular
  else
    let d_alus = t.dem_alus.(cluster) + nd.Problem.demand.Resource.alus in
    let d_ags = t.dem_ags.(cluster) + nd.Problem.demand.Resource.ags in
    if not (fits t ~cluster ~d_alus ~d_ags ~ii) then Error err_exhausted
    else begin
      t.sp_node <- node;
      t.sp_cluster <- cluster;
      t.sp_dem_alus <- t.dem_alus.(cluster);
      t.sp_dem_ags <- t.dem_ags.(cluster);
      t.sp_carried <- t.carried_cuts;
      t.sp_cache_ii <- t.cache_ii;
      t.sp_fmark <- Copy_flow.push_mark t.flow;
      let sc = acquire_scratch t.pg_n in
      sc.spf.(0) <- t.fl.(0);
      sc.spf.(1) <- t.fl.(1);
      t.place.(node) <- cluster;
      t.dem_alus.(cluster) <- d_alus;
      t.dem_ags.(cluster) <- d_ags;
      t.assigned <- t.assigned + 1;
      touch t sc cluster;
      let blocked = route_arcs t sc ~node ~cluster in
      if blocked >= 0 then begin
        t.place.(node) <- -1;
        t.dem_alus.(cluster) <- t.sp_dem_alus;
        t.dem_ags.(cluster) <- t.sp_dem_ags;
        t.assigned <- t.assigned - 1;
        t.carried_cuts <- t.sp_carried;
        Copy_flow.undo_to_mark t.flow t.sp_fmark;
        clear_touched sc;
        release_scratch sc;
        Hca_obs.Obs.count "state.spec_reject" 1;
        (* The SEE discards speculative error text; the arc ids stay
           available through the retained clone-based [try_assign],
           which the no-candidate diagnosis uses. *)
        Error "no communication pattern"
      end
      else begin
        refresh_speculative t sc ~target_ii;
        t.fl.(0) <- score_now t ~ii:target_ii ~weights;
        t.sp_active <- true;
        t.scr <- Some sc;
        Hca_obs.Obs.count "state.spec_apply" 1;
        Ok ()
      end
    end

let undo_speculation t =
  if not t.sp_active then
    invalid_arg "State.undo_speculation: nothing in flight";
  let sc = match t.scr with Some s -> s | None -> assert false in
  restore_speculative t sc;
  t.cache_ii <- t.sp_cache_ii;
  t.fl.(0) <- sc.spf.(0);
  t.fl.(1) <- sc.spf.(1);
  t.carried_cuts <- t.sp_carried;
  t.place.(t.sp_node) <- -1;
  t.dem_alus.(t.sp_cluster) <- t.sp_dem_alus;
  t.dem_ags.(t.sp_cluster) <- t.sp_dem_ags;
  t.assigned <- t.assigned - 1;
  Copy_flow.undo_to_mark t.flow t.sp_fmark;
  clear_touched sc;
  release_scratch sc;
  t.scr <- None;
  t.sp_active <- false;
  Hca_obs.Obs.count "state.spec_undo" 1

(* Batched frontier scoring: evaluate every candidate cluster for
   [node] in one pass, reusing the speculation arena per candidate.
   [scores.(k)] receives the would-be {!cost} of the move to
   [clusters.(k)] — including the region-tear penalty the SEE would
   apply — or [nan] when the move is infeasible.  Returns the feasible
   count.  The state is restored bit for bit between candidates and
   before returning; the float arithmetic is shared with the
   speculative path ([score_now] / [Cost.score_flat]), so the batch is
   bit-identical to a speculate/penalise/undo loop (property
   tested). *)
let score_moves t ~node ~clusters ~ii ~target_ii ~weights ~tail_of_region
    ~scores =
  if t.sp_active then invalid_arg "State.score_moves: speculation in flight";
  if t.place.(node) >= 0 then
    invalid_arg "State.score_moves: node already assigned";
  let nd = Problem.node t.problem node in
  let nd_alus = nd.Problem.demand.Resource.alus in
  let nd_ags = nd.Problem.demand.Resource.ags in
  let base_extra = t.fl.(1) in
  let feasible = ref 0 in
  let sc = acquire_scratch t.pg_n in
  for k = 0 to Array.length clusters - 1 do
    let cluster = clusters.(k) in
    scores.(k) <- nan;
    if is_reg t cluster then begin
    let d_alus = t.dem_alus.(cluster) + nd_alus in
    let d_ags = t.dem_ags.(cluster) + nd_ags in
    if fits t ~cluster ~d_alus ~d_ags ~ii then begin
      let sv_dem_alus = t.dem_alus.(cluster) in
      let sv_dem_ags = t.dem_ags.(cluster) in
      let sv_carried = t.carried_cuts in
      let sv_cache = t.cache_ii in
      let fmark = Copy_flow.push_mark t.flow in
      t.place.(node) <- cluster;
      t.dem_alus.(cluster) <- d_alus;
      t.dem_ags.(cluster) <- d_ags;
      t.assigned <- t.assigned + 1;
      touch t sc cluster;
      let blocked = route_arcs t sc ~node ~cluster in
      if blocked >= 0 then Hca_obs.Obs.count "state.spec_reject" 1
      else begin
        refresh_speculative t sc ~target_ii;
        let cost_v = score_now t ~ii:target_ii ~weights in
        (* The region-tear lookahead the SEE applies to each surviving
           move, with the exact float-op order of
           [add_penalty]-then-[cost]. *)
        let deficit =
          tail_of_region - 1
          - ((t.slots_issue.(cluster) * ii) - (d_alus + d_ags))
        in
        let extra =
          if deficit > 0 then
            base_extra +. (weights.Cost.w_tear *. float_of_int deficit)
          else base_extra
        in
        scores.(k) <- cost_v +. extra;
        incr feasible;
        Hca_obs.Obs.count "state.spec_apply" 1;
        restore_speculative t sc;
        t.cache_ii <- sv_cache;
        Hca_obs.Obs.count "state.spec_undo" 1
      end;
      t.place.(node) <- -1;
      t.dem_alus.(cluster) <- sv_dem_alus;
      t.dem_ags.(cluster) <- sv_dem_ags;
      t.assigned <- t.assigned - 1;
      t.carried_cuts <- sv_carried;
      Copy_flow.undo_to_mark t.flow fmark;
      clear_touched sc
    end
    end
  done;
  release_scratch sc;
  !feasible

(* Route-Allocator entry: blocked arcs are collected instead of
   failing the move.  Cold path — the per-call closure is fine. *)
let force_assign t ~node ~cluster ~ii =
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error err_assigned
  else if not (is_reg t cluster) then Error err_not_regular
  else
    let d_alus = t.dem_alus.(cluster) + nd.Problem.demand.Resource.alus in
    let d_ags = t.dem_ags.(cluster) + nd.Problem.demand.Resource.ags in
    if not (fits t ~cluster ~d_alus ~d_ags ~ii) then Error err_exhausted
    else begin
      let t' = clone t in
      t'.place.(node) <- cluster;
      t'.dem_alus.(cluster) <- d_alus;
      t'.dem_ags.(cluster) <- d_ags;
      t'.assigned <- t'.assigned + 1;
      t'.cache_ii <- -1;
      let blocked = ref [] in
      let route ~src ~dst ~carried value =
        if src <> dst then
          if Copy_flow.can_add t'.flow ~src ~dst then begin
            Copy_flow.add_copy t'.flow ~src ~dst value;
            if carried then t'.carried_cuts <- t'.carried_cuts + 1
          end
          else blocked := (value, src, dst) :: !blocked
      in
      List.iter
        (fun (e : Problem.edge) ->
          let s = t'.place.(e.src) in
          if s >= 0 then
            route ~src:s ~dst:cluster
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.preds t.problem node);
      List.iter
        (fun (e : Problem.edge) ->
          let d = t'.place.(e.dst) in
          if d >= 0 then
            route ~src:cluster ~dst:d
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.succs t.problem node);
      Ok (t', List.rev !blocked)
    end

(* Trail-based feasibility twin of {!force_assign}: the same move and
   the same direct-arc routing sequence, applied to [t] itself under a
   flow mark instead of a clone.  The Route Allocator probes an attempt
   here first — detouring the returned blocked values on [t] with
   {!add_forward}/[Copy_flow.add_copy] — and only pays a clone (via the
   retained {!force_assign} replay) for the attempts whose detours all
   went through; {!abort_force} rewinds the probe, forwards included,
   bit for bit.  Cost caches are never touched: the probe answers
   feasibility only. *)
let probe_force t ~node ~cluster ~ii =
  if t.sp_active then invalid_arg "State.probe_force: speculation in flight";
  let nd = Problem.node t.problem node in
  if t.place.(node) >= 0 then Error err_assigned
  else if not (is_reg t cluster) then Error err_not_regular
  else
    let d_alus = t.dem_alus.(cluster) + nd.Problem.demand.Resource.alus in
    let d_ags = t.dem_ags.(cluster) + nd.Problem.demand.Resource.ags in
    if not (fits t ~cluster ~d_alus ~d_ags ~ii) then Error err_exhausted
    else begin
      t.sp_node <- node;
      t.sp_cluster <- cluster;
      t.sp_dem_alus <- t.dem_alus.(cluster);
      t.sp_dem_ags <- t.dem_ags.(cluster);
      t.sp_carried <- t.carried_cuts;
      t.sp_cache_ii <- t.cache_ii;
      t.sp_fwd_len <- Hca_util.Vec.length t.fwd_val;
      t.sp_fmark <- Copy_flow.push_mark t.flow;
      t.sp_active <- true;
      t.place.(node) <- cluster;
      t.dem_alus.(cluster) <- d_alus;
      t.dem_ags.(cluster) <- d_ags;
      t.assigned <- t.assigned + 1;
      (* Mirror [force_assign]'s routing loop exactly: same arc order,
         same [can_add] decisions against the same intermediate flow,
         so the blocked list is identical to the clone path's. *)
      let blocked = ref [] in
      let route ~src ~dst ~carried value =
        if src <> dst then
          if Copy_flow.can_add t.flow ~src ~dst then begin
            Copy_flow.add_copy t.flow ~src ~dst value;
            if carried then t.carried_cuts <- t.carried_cuts + 1
          end
          else blocked := (value, src, dst) :: !blocked
      in
      List.iter
        (fun (e : Problem.edge) ->
          let s = t.place.(e.src) in
          if s >= 0 then
            route ~src:s ~dst:cluster
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.preds t.problem node);
      List.iter
        (fun (e : Problem.edge) ->
          let d = t.place.(e.dst) in
          if d >= 0 then
            route ~src:cluster ~dst:d
              ~carried:(e.distance > 0 || same_circuit t e.src e.dst)
              e.value)
        (Problem.succs t.problem node);
      Ok (List.rev !blocked)
    end

(* Materialise a successful probe as a fresh successor state: copy the
   per-state arrays exactly as they stand — move, direct arcs and
   detours applied — and re-score from scratch, as the Route
   Allocator's commit always has.  The caller still owns the probe on
   [t] and must {!abort_force} it afterwards; the snapshot shares
   nothing mutable with [t], so the rewind cannot disturb it. *)
let commit_probe t ~target_ii ~weights =
  if not t.sp_active then invalid_arg "State.commit_probe: nothing in flight";
  let t' =
    {
      t with
      place = Array.copy t.place;
      flow = Copy_flow.snapshot t.flow;
      dem_alus = Array.copy t.dem_alus;
      dem_ags = Array.copy t.dem_ags;
      fwd_val = Hca_util.Vec.copy t.fwd_val;
      fwd_via = Hca_util.Vec.copy t.fwd_via;
      fl = Array.copy t.fl;
      node_util = Array.copy t.node_util;
      node_proj = Array.copy t.node_proj;
      node_fanin = Array.copy t.node_fanin;
      sp_active = false;
      scr = None;
    }
  in
  recompute_cost t' ~target_ii ~weights;
  t'

let abort_force t =
  if not t.sp_active then invalid_arg "State.abort_force: nothing in flight";
  (* Forwards the Route Allocator injected since the probe: pop their
     demand contributions, then truncate the vectors. *)
  let len = Hca_util.Vec.length t.fwd_via in
  for i = t.sp_fwd_len to len - 1 do
    let via = Hca_util.Vec.get t.fwd_via i in
    t.dem_alus.(via) <- t.dem_alus.(via) - 1
  done;
  Hca_util.Vec.truncate t.fwd_val t.sp_fwd_len;
  Hca_util.Vec.truncate t.fwd_via t.sp_fwd_len;
  t.place.(t.sp_node) <- -1;
  t.dem_alus.(t.sp_cluster) <- t.sp_dem_alus;
  t.dem_ags.(t.sp_cluster) <- t.sp_dem_ags;
  t.assigned <- t.assigned - 1;
  t.carried_cuts <- t.sp_carried;
  t.cache_ii <- t.sp_cache_ii;
  Copy_flow.undo_to_mark t.flow t.sp_fmark;
  t.sp_active <- false

let add_forward t ~value ~via =
  t.dem_alus.(via) <- t.dem_alus.(via) + 1;
  (* The Route Allocator mutates the flow behind our back as well; its
     commit always ends in a full [recompute_cost], so just mark the
     contribution caches stale. *)
  t.cache_ii <- -1;
  ignore (Hca_util.Vec.push t.fwd_val value : int);
  ignore (Hca_util.Vec.push t.fwd_via via : int)

(* Transposition signature: everything that makes two partial solutions
   behave identically downstream — placement, routed flow, forwards,
   carried cuts and the (bit-exact) cost terms. *)
let signature t =
  let h = Hca_util.Sig_hash.create () in
  Hca_util.Sig_hash.add_int h t.assigned;
  Hca_util.Sig_hash.add_int h t.carried_cuts;
  Hca_util.Sig_hash.add_float h t.fl.(0);
  Hca_util.Sig_hash.add_float h t.fl.(1);
  Hca_util.Sig_hash.add_int_array h t.place;
  Copy_flow.hash_into t.flow h;
  (* Newest first, the order of the forwards list this replaced. *)
  for i = Hca_util.Vec.length t.fwd_val - 1 downto 0 do
    Hca_util.Sig_hash.add_int h (Hca_util.Vec.get t.fwd_val i);
    Hca_util.Sig_hash.add_int h (Hca_util.Vec.get t.fwd_via i)
  done;
  Hca_util.Sig_hash.value h

let fwds_equal a b =
  let n = Hca_util.Vec.length a.fwd_val in
  n = Hca_util.Vec.length b.fwd_val
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    if
      Hca_util.Vec.get a.fwd_val i <> Hca_util.Vec.get b.fwd_val i
      || Hca_util.Vec.get a.fwd_via i <> Hca_util.Vec.get b.fwd_via i
    then ok := false
  done;
  !ok

let equal a b =
  a.assigned = b.assigned
  && a.carried_cuts = b.carried_cuts
  && a.fl.(0) = b.fl.(0)
  && a.fl.(1) = b.fl.(1)
  && a.place = b.place
  && fwds_equal a b
  && Copy_flow.equal a.flow b.flow

(* Test hook: {!equal} plus the derived structures (members, demand)
   and the incremental-cost caches, so the trail property test can
   assert a speculation round trip restores *every* field bit for
   bit. *)
let debug_identical a b =
  equal a b
  && a.dem_alus = b.dem_alus
  && a.dem_ags = b.dem_ags
  && a.cache_ii = b.cache_ii
  && a.node_util = b.node_util
  && a.node_proj = b.node_proj
  && a.node_fanin = b.node_fanin

let pp ppf t =
  Format.fprintf ppf "@[<v>state (%d/%d assigned, cost %.2f)" t.assigned
    (Problem.size t.problem) (cost t);
  Array.iteri
    (fun id c ->
      if c >= 0 then
        Format.fprintf ppf "@,  %s -> @%d"
          (Problem.node t.problem id).Problem.label c)
    t.place;
  Format.fprintf ppf "@]"

