(** Portfolio search: the heuristic knobs of {!Config.t} interact with
    the kernel shape in ways no single setting wins everywhere (§7:
    "ongoing research aims at tuning of the heuristics and cost
    functions").  The portfolio runs the full pipeline under a small set
    of deliberately diverse configurations and keeps the best legal
    clusterisation — smaller final MII first, fewer copies as the
    tie-break. *)

open Hca_ddg
open Hca_machine

val default_configs : (string * Config.t) list
(** Diverse and cheap: default, wide beam, criticality order, spread
    wires, and copy-averse weights. *)

val run_all :
  ?jobs:int ->
  ?memo:bool ->
  ?configs:(string * Config.t) list ->
  Dspfabric.t ->
  Ddg.t ->
  (string * Report.t) list
(** One report per configuration, in configuration order.  The
    configurations are independent, so [jobs > 1] evaluates them
    concurrently on a {!Hca_util.Domain_pool}; the returned list is
    merged back in configuration order, so the output is identical at
    every [jobs].  [memo] is forwarded to every {!Report.run}.
    @raise Invalid_argument on an empty configuration list. *)

val best_of : (string * Report.t) list -> Report.t * string
(** The winning report (and its configuration name) from a list as
    returned by {!run_all}: legal beats illegal, then smaller final
    MII, then fewer copies; earlier entries win ties.  Lets callers
    that need every report (e.g. the bench tables) avoid re-running
    the search just to learn the winner.
    @raise Invalid_argument on an empty list. *)

val run :
  ?jobs:int ->
  ?memo:bool ->
  ?configs:(string * Config.t) list ->
  Dspfabric.t ->
  Ddg.t ->
  Report.t * string
(** Best report plus the name of the winning configuration.  Falls back
    to the default configuration's report when nothing is legal.
    [jobs] as in {!run_all}: same winner at any value. *)
