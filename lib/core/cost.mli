(** Objective function of the Space Exploration Engine (§3).

    The assignment [n -> c] is evaluated by a weighted combination of
    heuristic criteria.  Following §4.2, the dominant factor is the
    projected Minimum Initiation Interval of the loop on the clusterised
    machine; the other terms break ties towards fewer inter-cluster
    copies and a balanced load, which keep the copy pressure low in the
    later Mapper pass. *)

type weights = {
  w_copy : float;  (** per inter-cluster value hop *)
  w_balance : float;  (** load-imbalance penalty (utilisation spread) *)
  w_pressure : float;  (** per cycle of projected-II overshoot over the target *)
  w_port : float;  (** per input port drawn into the level (leaf: scarce, K) *)
  w_util : float;  (** peak-utilisation smoothing term *)
  w_fanin : float;
      (** in-neighbour saturation: clusters whose MUX inputs are nearly
          exhausted choke later assignments, so the search steers away
          before hitting the wall *)
  w_tear : float;
      (** region-tear lookahead: penalty per region node that will not
          fit on the chosen cluster after this assignment — discourages
          starting an affinity region on a cluster too full to hold it *)
  w_carried : float;
      (** per loop-carried dependence cut across clusters: every such
          cut stretches a recurrence circuit by the copy latency and
          inflates MIIRec beyond anything the static bound predicted *)
}

val default_weights : weights

(** What the scorer sees of a (partial) solution; produced by
    {!State.summary} so that the two modules stay decoupled. *)
type summary = {
  copies : int;
  max_util : float;  (** max over clusters of demand slots / capacity slots *)
  util_spread : float;  (** max - min utilisation over non-empty capacity clusters *)
  projected_ii : int;  (** cluster-MII estimate incl. receive pressure *)
  target_ii : int;
  used_in_ports : int;
  fanin_sat : float;
      (** sum over clusters of (real in-neighbours / max_in)^2 *)
  carried_cuts : int;
      (** loop-carried dependences whose endpoints sit on different
          clusters *)
}

val score : weights -> summary -> float
(** Lower is better.  Monotone in every summary component. *)

val score_flat :
  weights ->
  copies:int ->
  max_util:float ->
  util_spread:float ->
  projected_ii:int ->
  target_ii:int ->
  used_in_ports:int ->
  fanin_sat:float ->
  carried_cuts:int ->
  float
(** {!score} over unpacked summary components.  The float arithmetic
    exists exactly once — [score] is defined in terms of this — so the
    SEE's batch scorer, which never materialises a [summary] record,
    is bit-identical to the record path by construction. *)

val cluster_mii :
  demand:Hca_machine.Resource.t ->
  capacity:Hca_machine.Resource.t ->
  receives:int ->
  max_in:int ->
  int
(** The per-cluster projected-MII term of §4.2, shared by
    {!State.summary} and the exact oracle's CNF encoder
    ({!Hca_exact.Encode}) so the two provably optimise the same
    quantity:
    [max (minII demand capacity)
         (ceil ((demand.alus + receives) / capacity.alus))
         (ceil (receives / max_in))]
    — the FU/issue window, the receive primitives competing with ALU
    ops for the issue slot, and the incoming-wire serialisation. *)

val cluster_mii_flat :
  d_alus:int ->
  d_ags:int ->
  c_alus:int ->
  c_ags:int ->
  receives:int ->
  max_in:int ->
  int
(** {!cluster_mii} over unpacked demand/capacity components, for the
    flat-layout refresh path that keeps cluster demand as
    struct-of-arrays and never builds [Resource.t] records.
    [cluster_mii] is defined in terms of this. *)

val pp_weights : Format.formatter -> weights -> unit
