let default_configs =
  [
    ("default", Config.default);
    ("beam16", { Config.default with beam_width = 16; candidate_width = 4 });
    ("criticality", { Config.default with priority = Config.Criticality });
    ("spread", { Config.default with mapper_spread = true });
    ( "copy-averse",
      {
        Config.default with
        weights = { Cost.default_weights with w_copy = 3.0; w_tear = 3.0 };
      } );
    ("tight-quads", { Config.default with leaf_feed_fanin_cap = 3 });
    ( "thorough",
      {
        Config.default with
        beam_width = 24;
        candidate_width = 4;
        max_alternatives = 8;
        ii_patience = 5;
      } );
  ]

let better (a : Report.t) (b : Report.t) =
  match (a.Report.legal, b.Report.legal) with
  | true, false -> true
  | false, true -> false
  | false, false -> false
  | true, true -> (
      match (a.Report.final_mii, b.Report.final_mii) with
      | Some ma, Some mb ->
          ma < mb || (ma = mb && a.Report.copies < b.Report.copies)
      | Some _, None -> true
      | None, _ -> false)

let run_all ?(jobs = 1) ?memo ?(configs = default_configs) fabric ddg =
  match configs with
  | [] -> invalid_arg "Portfolio.run: empty configuration list"
  | _ ->
      (* The configurations are fully independent searches, so they
         fan out onto the domain pool; the result list keeps the
         configuration order, so every fold over it is deterministic.
         Each run owns its subproblem memo — the configuration is part
         of the memo key, so sharing across runs would never hit. *)
      Hca_util.Domain_pool.parallel_map ~jobs
        (fun (name, config) ->
          ( name,
            Hca_obs.Obs.span "portfolio.config"
              ~args:[ ("config", name) ]
              (fun () -> Report.run ~config ?memo fabric ddg) ))
        configs

let best_of = function
  | [] -> invalid_arg "Portfolio.best_of: empty report list"
  | (name0, first) :: rest ->
      List.fold_left
        (fun (best, best_name) (name, r) ->
          if better r best then (r, name) else (best, best_name))
        (first, name0) rest

let run ?jobs ?memo ?configs fabric ddg =
  best_of (run_all ?jobs ?memo ?configs fabric ddg)
