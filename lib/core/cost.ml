type weights = {
  w_copy : float;
  w_balance : float;
  w_pressure : float;
  w_port : float;
  w_util : float;
  w_fanin : float;
  w_tear : float;
  w_carried : float;
}

let default_weights =
  {
    w_copy = 1.0;
    w_balance = 0.5;
    w_pressure = 8.0;
    w_port = 0.25;
    w_util = 0.5;
    w_fanin = 2.0;
    w_tear = 1.5;
    w_carried = 6.0;
  }

type summary = {
  copies : int;
  max_util : float;
  util_spread : float;
  projected_ii : int;
  target_ii : int;
  used_in_ports : int;
  fanin_sat : float;
  carried_cuts : int;
}

let ceil_div a b = (a + b - 1) / b

(* Scalar twin of {!cluster_mii} for the flat-layout hot path: same
   arithmetic on unpacked demand/capacity components, so the SEE's
   per-cluster refresh never builds [Resource.t] records. *)
let cluster_mii_flat ~d_alus ~d_ags ~c_alus ~c_ags ~receives ~max_in =
  (* Inlined [Resource.min_ii]. *)
  let need amount cap =
    if amount = 0 then 1
    else if cap = 0 then max_int
    else ceil_div amount cap
  in
  let p =
    max
      (need (d_alus + d_ags) (max c_alus c_ags))
      (max (need d_alus c_alus) (need d_ags c_ags))
  in
  let p =
    if c_alus > 0 then max p (ceil_div (d_alus + receives) c_alus) else p
  in
  if receives > 0 then max p (ceil_div receives max_in) else p

let cluster_mii ~demand ~capacity ~receives ~max_in =
  let open Hca_machine in
  cluster_mii_flat ~d_alus:demand.Resource.alus ~d_ags:demand.Resource.ags
    ~c_alus:capacity.Resource.alus ~c_ags:capacity.Resource.ags ~receives
    ~max_in

(* The one and only scoring arithmetic: {!score} and the SEE's batch
   scorer both land here, so "bit-identical" is true by construction —
   the float operations and their order exist exactly once. *)
let score_flat w ~copies ~max_util ~util_spread ~projected_ii ~target_ii
    ~used_in_ports ~fanin_sat ~carried_cuts =
  let overshoot = max 0 (projected_ii - target_ii) in
  (w.w_copy *. float_of_int copies)
  +. (w.w_balance *. util_spread)
  +. (w.w_pressure *. float_of_int overshoot)
  +. (w.w_port *. float_of_int used_in_ports)
  +. (w.w_util *. max_util)
  +. (w.w_fanin *. fanin_sat)
  +. (w.w_carried *. float_of_int carried_cuts)

let score w s =
  score_flat w ~copies:s.copies ~max_util:s.max_util
    ~util_spread:s.util_spread ~projected_ii:s.projected_ii
    ~target_ii:s.target_ii ~used_in_ports:s.used_in_ports
    ~fanin_sat:s.fanin_sat ~carried_cuts:s.carried_cuts

let pp_weights ppf w =
  Format.fprintf ppf
    "{copy=%g; balance=%g; pressure=%g; port=%g; util=%g; fanin=%g; tear=%g; \
     carried=%g}"
    w.w_copy w.w_balance w.w_pressure w.w_port w.w_util w.w_fanin w.w_tear
    w.w_carried
