type outcome = {
  state : State.t;
  alternatives : State.t list;
  explored : int;
  routed : int;
}

(* Priority list of unassigned nodes, computed once per subproblem: the
   exploration picks nodes in this fixed order so that all the partial
   solutions of a frontier talk about the same prefix of the list.

   Nodes wired to an output port jump the queue, grouped by port: a port
   accepts a single real in-arc, so its feeders must agree on a cluster
   — a constraint best surfaced while the resource tables are empty
   (Fig. 10 shows exactly this forced co-location). *)
let out_port_group problem id =
  List.fold_left
    (fun acc (e : Problem.edge) ->
      let dst = Problem.node problem e.dst in
      match dst.Problem.pinned with
      | Some _ when Problem.succs problem e.dst = [] -> min acc e.dst
      | _ -> acc)
    max_int
    (Problem.succs problem id)

let priority_order config problem ~ii =
  let free = Problem.free_nodes problem in
  let group = out_port_group problem in
  match config.Config.priority with
  | Config.Affinity ->
      let capacity =
        let regs = Hca_machine.Pattern_graph.regular_nodes (Problem.pg problem) in
        match regs with
        | [] -> 1
        | nd :: _ -> max 1 (Hca_machine.Resource.issue_slots nd.capacity * ii)
      in
      let region = Regions.partition problem ~capacity in
      let h = Problem.height problem in
      let key id = (region.(id), group id, -h.(id), id) in
      (List.stable_sort (fun a b -> compare (key a) (key b)) free, Some region)
  | Config.Source_order -> (free, None)
  | Config.Topological ->
      (* Producers before consumers: ASAP cycle ascending, id tie-break. *)
      let d = Problem.depth problem in
      (List.stable_sort (fun a b -> compare (d.(a), a) (d.(b), b)) free, None)
  | Config.Criticality ->
      let h = Problem.height problem in
      (* Port feeders first (per port), then most critical first; ties:
         more demanding node first, then id. *)
      let key id =
        let nd = Problem.node problem id in
        (group id, -h.(id), -(nd.Problem.demand.alus + nd.Problem.demand.ags), id)
      in
      (List.stable_sort (fun a b -> compare (key a) (key b)) free, None)

let candidate_clusters problem =
  Hca_machine.Pattern_graph.regular_nodes (Problem.pg problem)
  |> List.map (fun (nd : Hca_machine.Pattern_graph.node) -> nd.id)

(* A scored child of the frontier.  [Spec] is a move that was applied
   to the parent's trail, scored, and undone — it holds no clone, only
   the recipe to replay it.  [Mat] is a state the Route Allocator
   already had to build (its detours have no trail twin). *)
type cand =
  | Spec of {
      parent : State.t;
      cluster : Hca_machine.Pattern_graph.node_id;
      cost : float;
    }
  | Mat of State.t

let cand_cost = function Spec { cost; _ } -> cost | Mat st -> State.cost st

let solve_traced ~config ?target_ii ~backbone problem ~ii =
  let target_ii = Option.value ~default:ii target_ii in
  let weights = config.Config.weights in
  let order, region_of = priority_order config problem ~ii in
  (* Region-tear lookahead: how many nodes of the current node's region
     are still unplaced at each position of the priority list. *)
  let remaining_region =
    match region_of with
    | None -> Array.make (List.length order) 0
    | Some region ->
        let arr = Array.of_list order in
        let n = Array.length arr in
        let rem = Array.make n 0 in
        let counts = Hashtbl.create 16 in
        for i = n - 1 downto 0 do
          let r = region.(arr.(i)) in
          let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts r) in
          Hashtbl.replace counts r c;
          rem.(i) <- c
        done;
        rem
  in
  let clusters = candidate_clusters problem in
  (* Batch-scoring scratch, reused across every frontier expansion:
     candidate clusters as a flat array and one score slot each. *)
  let clusters_arr = Array.of_list clusters in
  let scores = Array.make (max 1 (Array.length clusters_arr)) nan in
  let explored = ref 1 and routed = ref 0 in
  (* A child of the current frontier, either still speculative (the
     move was scored on the parent's trail and undone — no clone paid
     yet) or already materialised (the Route Allocator's fallback has
     no trail twin, so it clones as before). *)
  let penalise ~tail_of_region st c =
    let deficit = tail_of_region - 1 - State.free_issue_slots st ~cluster:c ~ii in
    if deficit > 0 then
      State.add_penalty st (weights.Cost.w_tear *. float_of_int deficit)
  in
  let expand ~tail_of_region node state =
    (* One pass over the state's flat arrays scores every candidate
       cluster (tear penalty included), with no per-candidate
       allocation; the candidate-width cut happens inside the batch, so
       only the winners pay a [Spec] record.  Scores are bit-identical
       to the speculate/penalise/undo loop this replaces (property
       tested), and ties keep the cluster order, so the cut picks the
       same winners. *)
    let feasible =
      State.score_moves state ~node ~clusters:clusters_arr ~ii ~target_ii
        ~weights ~tail_of_region ~scores
    in
    explored := !explored + feasible;
    if feasible > 0 then
      List.map
        (fun k ->
          Spec { parent = state; cluster = clusters_arr.(k); cost = scores.(k) })
        (Hca_util.Topk.smallest_indices ~k:config.Config.candidate_width scores
           ~len:(Array.length clusters_arr))
    else if config.Config.enable_router then
        (* No-candidates action: try the Route Allocator towards every
           cluster, cheapest resulting state first. *)
        List.filter_map
          (fun c ->
            match
              Router.assign_with_routing state ~node ~cluster:c ~ii ~target_ii
                ~weights ~max_hops:config.Config.max_route_hops
            with
            | Ok st ->
                incr explored;
                incr routed;
                Some (Mat st)
            | Error _ -> None)
          clusters
    else []
  in
  (* Clones are paid here, for beam survivors only: replaying the move
     through the retained clone-based [try_assign] reproduces the
     speculative score bit for bit. *)
  let materialise ~tail_of_region node = function
    | Mat st -> st
    | Spec { parent; cluster; cost } -> (
        match
          State.try_assign parent ~node ~cluster ~ii ~target_ii ~weights
        with
        | Ok st ->
            penalise ~tail_of_region st cluster;
            assert (State.cost st = cost);
            st
        | Error _ -> assert false (* the speculation succeeded *))
  in
  let by_cost a b = compare (State.cost a) (State.cost b) in
  (* Frontier cuts: stable top-k selection instead of sorting whole
     child lists only to drop everything past the beam.  Both cuts now
     rank candidates, not clones: the cost was computed on the trail,
     so losing candidates never pay an allocation. *)
  let best_k_cand k cands = Hca_util.Topk.smallest ~k ~key:cand_cost cands in
  (* Transposition dedup: the beam never carries two identical states.
     Duplicates must agree on the (bit-exact) cost, so only tied
     entries ever pay the signature + structural comparison. *)
  let dedup states =
    match states with
    | [] | [ _ ] -> states
    | _ ->
        let tagged =
          List.map (fun st -> (st, lazy (State.signature st))) states
        in
        let keep (st, s) kept =
          not
            (List.exists
               (fun (prev, ps) ->
                 State.cost prev = State.cost st
                 && Lazy.force ps = Lazy.force s
                 && State.equal prev st)
               kept)
        in
        List.rev_map fst
          (List.fold_left
             (fun kept x -> if keep x kept then x :: kept else kept)
             [] tagged)
  in
  let rec loop pos frontier = function
    | [] -> (
        match List.sort by_cost frontier with
        | best :: rest ->
            Ok
              {
                state = best;
                alternatives = rest;
                explored = !explored;
                routed = !routed;
              }
        | [] -> Error (Problem.name problem ^ ": empty frontier"))
    | node :: rest ->
        let tail_of_region = remaining_region.(pos) in
        (* Observation only — list lengths are paid when tracing. *)
        if Hca_obs.Obs.enabled () then
          Hca_obs.Obs.observe "see.frontier"
            (float_of_int (List.length frontier));
        let children =
          List.concat_map
            (fun st ->
              best_k_cand config.Config.candidate_width
                (expand ~tail_of_region node st))
            frontier
        in
        if Hca_obs.Obs.enabled () then
          Hca_obs.Obs.observe "see.children"
            (float_of_int (List.length children));
        (match children with
        | [] ->
            let pg = Problem.pg problem in
            let diagnosis =
              match frontier with
              | [] -> ""
              | st :: _ ->
                  let per_cluster =
                    List.map
                      (fun c ->
                        match
                          State.try_assign st ~node ~cluster:c ~ii ~target_ii
                            ~weights
                        with
                        | Ok _ -> Printf.sprintf "@%d: ok?!" c
                        | Error m -> Printf.sprintf "@%d: %s" c m)
                      clusters
                  in
                  " | " ^ String.concat "; " per_cluster
            in
            Error
              (Printf.sprintf
                 "%s: no candidates for node %s at II=%d (pg: %d regular, %d \
                  in-ports [%s], %d out-ports [%s], max_in=%d)%s"
                 (Problem.name problem)
                 (Problem.node problem node).Problem.label ii
                 (List.length (Hca_machine.Pattern_graph.regular_nodes pg))
                 (List.length (Hca_machine.Pattern_graph.in_ports pg))
                 (String.concat ";"
                    (List.map
                       (fun nd ->
                         string_of_int
                           (List.length
                              (Hca_machine.Pattern_graph.port_values nd)))
                       (Hca_machine.Pattern_graph.in_ports pg)))
                 (List.length (Hca_machine.Pattern_graph.out_ports pg))
                 (String.concat ";"
                    (List.map
                       (fun nd ->
                         string_of_int
                           (List.length
                              (Hca_machine.Pattern_graph.port_values nd)))
                       (Hca_machine.Pattern_graph.out_ports pg)))
                 (Hca_machine.Pattern_graph.max_in pg)
                 diagnosis)
        | _ ->
            let winners = best_k_cand config.Config.beam_width children in
            let materialised =
              List.map (materialise ~tail_of_region node) winners
            in
            let frontier' = dedup materialised in
            if Hca_obs.Obs.enabled () then
              Hca_obs.Obs.count "see.dedup_killed"
                (List.length materialised - List.length frontier');
            loop (pos + 1) frontier' rest)
  in
  loop 0 [ State.create ~backbone problem ] order

let solve ?(config = Config.default) ?target_ii ?(backbone = []) problem ~ii =
  Hca_obs.Obs.span "see.solve"
    ~args:[ ("problem", Problem.name problem); ("ii", string_of_int ii) ]
    (fun () -> solve_traced ~config ?target_ii ~backbone problem ~ii)

