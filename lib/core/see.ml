type outcome = {
  state : State.t;
  alternatives : State.t list;
  explored : int;
  routed : int;
}

(* Priority list of unassigned nodes, computed once per subproblem: the
   exploration picks nodes in this fixed order so that all the partial
   solutions of a frontier talk about the same prefix of the list.

   Nodes wired to an output port jump the queue, grouped by port: a port
   accepts a single real in-arc, so its feeders must agree on a cluster
   — a constraint best surfaced while the resource tables are empty
   (Fig. 10 shows exactly this forced co-location). *)
let out_port_group problem id =
  List.fold_left
    (fun acc (e : Problem.edge) ->
      let dst = Problem.node problem e.dst in
      match dst.Problem.pinned with
      | Some _ when Problem.succs problem e.dst = [] -> min acc e.dst
      | _ -> acc)
    max_int
    (Problem.succs problem id)

let priority_order config problem ~ii =
  let free = Problem.free_nodes problem in
  let group = out_port_group problem in
  match config.Config.priority with
  | Config.Affinity ->
      let capacity =
        let regs = Hca_machine.Pattern_graph.regular_nodes (Problem.pg problem) in
        match regs with
        | [] -> 1
        | nd :: _ -> max 1 (Hca_machine.Resource.issue_slots nd.capacity * ii)
      in
      let region = Regions.partition problem ~capacity in
      let h = Problem.height problem in
      let key id = (region.(id), group id, -h.(id), id) in
      (List.stable_sort (fun a b -> compare (key a) (key b)) free, Some region)
  | Config.Source_order -> (free, None)
  | Config.Topological ->
      (* Producers before consumers: ASAP cycle ascending, id tie-break. *)
      let d = Problem.depth problem in
      (List.stable_sort (fun a b -> compare (d.(a), a) (d.(b), b)) free, None)
  | Config.Criticality ->
      let h = Problem.height problem in
      (* Port feeders first (per port), then most critical first; ties:
         more demanding node first, then id. *)
      let key id =
        let nd = Problem.node problem id in
        (group id, -h.(id), -(nd.Problem.demand.alus + nd.Problem.demand.ags), id)
      in
      (List.stable_sort (fun a b -> compare (key a) (key b)) free, None)

let candidate_clusters problem =
  Hca_machine.Pattern_graph.regular_nodes (Problem.pg problem)
  |> List.map (fun (nd : Hca_machine.Pattern_graph.node) -> nd.id)

let solve ?(config = Config.default) ?target_ii ?(backbone = []) problem ~ii =
  let target_ii = Option.value ~default:ii target_ii in
  let weights = config.Config.weights in
  let order, region_of = priority_order config problem ~ii in
  (* Region-tear lookahead: how many nodes of the current node's region
     are still unplaced at each position of the priority list. *)
  let remaining_region =
    match region_of with
    | None -> Array.make (List.length order) 0
    | Some region ->
        let arr = Array.of_list order in
        let n = Array.length arr in
        let rem = Array.make n 0 in
        let counts = Hashtbl.create 16 in
        for i = n - 1 downto 0 do
          let r = region.(arr.(i)) in
          let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts r) in
          Hashtbl.replace counts r c;
          rem.(i) <- c
        done;
        rem
  in
  let clusters = candidate_clusters problem in
  let explored = ref 1 and routed = ref 0 in
  let expand ~tail_of_region node state =
    let penalise st c =
      let deficit =
        tail_of_region - 1 - State.free_issue_slots st ~cluster:c ~ii
      in
      if deficit > 0 then
        State.add_penalty st (weights.Cost.w_tear *. float_of_int deficit)
    in
    let candidates =
      List.filter_map
        (fun c ->
          match State.try_assign state ~node ~cluster:c ~ii ~target_ii ~weights with
          | Ok st ->
              incr explored;
              penalise st c;
              Some st
          | Error _ -> None)
        clusters
    in
    match candidates with
    | _ :: _ -> candidates
    | [] when config.Config.enable_router ->
        (* No-candidates action: try the Route Allocator towards every
           cluster, cheapest resulting state first. *)
        List.filter_map
          (fun c ->
            match
              Router.assign_with_routing state ~node ~cluster:c ~ii ~target_ii
                ~weights ~max_hops:config.Config.max_route_hops
            with
            | Ok st ->
                incr explored;
                incr routed;
                Some st
            | Error _ -> None)
          clusters
    | [] -> []
  in
  let by_cost a b = compare (State.cost a) (State.cost b) in
  (* Frontier cuts: stable top-k selection instead of sorting whole
     child lists only to drop everything past the beam. *)
  let best_k k states = Hca_util.Topk.smallest ~k ~key:State.cost states in
  let rec loop pos frontier = function
    | [] -> (
        match List.sort by_cost frontier with
        | best :: rest ->
            Ok
              {
                state = best;
                alternatives = rest;
                explored = !explored;
                routed = !routed;
              }
        | [] -> Error (Problem.name problem ^ ": empty frontier"))
    | node :: rest ->
        let tail_of_region = remaining_region.(pos) in
        let children =
          List.concat_map
            (fun st ->
              best_k config.Config.candidate_width
                (expand ~tail_of_region node st))
            frontier
        in
        (match children with
        | [] ->
            let pg = Problem.pg problem in
            let diagnosis =
              match frontier with
              | [] -> ""
              | st :: _ ->
                  let per_cluster =
                    List.map
                      (fun c ->
                        match
                          State.try_assign st ~node ~cluster:c ~ii ~target_ii
                            ~weights
                        with
                        | Ok _ -> Printf.sprintf "@%d: ok?!" c
                        | Error m -> Printf.sprintf "@%d: %s" c m)
                      clusters
                  in
                  " | " ^ String.concat "; " per_cluster
            in
            Error
              (Printf.sprintf
                 "%s: no candidates for node %s at II=%d (pg: %d regular, %d \
                  in-ports [%s], %d out-ports [%s], max_in=%d)%s"
                 (Problem.name problem)
                 (Problem.node problem node).Problem.label ii
                 (List.length (Hca_machine.Pattern_graph.regular_nodes pg))
                 (List.length (Hca_machine.Pattern_graph.in_ports pg))
                 (String.concat ";"
                    (List.map
                       (fun nd ->
                         string_of_int
                           (List.length
                              (Hca_machine.Pattern_graph.port_values nd)))
                       (Hca_machine.Pattern_graph.in_ports pg)))
                 (List.length (Hca_machine.Pattern_graph.out_ports pg))
                 (String.concat ";"
                    (List.map
                       (fun nd ->
                         string_of_int
                           (List.length
                              (Hca_machine.Pattern_graph.port_values nd)))
                       (Hca_machine.Pattern_graph.out_ports pg)))
                 (Hca_machine.Pattern_graph.max_in pg)
                 diagnosis)
        | _ ->
            let frontier' = best_k config.Config.beam_width children in
            loop (pos + 1) frontier' rest)
  in
  loop 0 [ State.create ~backbone problem ] order
