open Hca_machine
open Hca_core

type instance = {
  n : int;
  cns : int;
  max_in : int;
  demand : Resource.t array;  (* per node *)
  capacity : Resource.t array;  (* per CN *)
  pairs : (int * int) list;  (* distinct (producer, consumer) dep pairs *)
  producers : int list;  (* nodes with at least one consumer, ascending *)
}

let of_problem problem =
  let pg = Problem.pg problem in
  Array.iter
    (fun (nd : Problem.node) ->
      if nd.pinned <> None then
        invalid_arg "Encode.of_problem: instance must be flat (no ports)")
    (Problem.nodes problem);
  let n = Problem.size problem in
  let demand = Array.map (fun (nd : Problem.node) -> nd.demand) (Problem.nodes problem) in
  let seen = Hashtbl.create 64 in
  let pairs = ref [] in
  Array.iter
    (fun (e : Problem.edge) ->
      if e.src <> e.dst && not (Hashtbl.mem seen (e.src, e.dst)) then begin
        Hashtbl.replace seen (e.src, e.dst) ();
        pairs := (e.src, e.dst) :: !pairs
      end)
    (Problem.edges problem);
  let producers =
    List.sort_uniq compare (List.map fst !pairs)
  in
  {
    n;
    cns = List.length (Pattern_graph.regular_nodes pg);
    max_in = Pattern_graph.max_in pg;
    demand;
    capacity =
      Array.of_list
        (List.map
           (fun (nd : Pattern_graph.node) -> nd.capacity)
           (Pattern_graph.regular_nodes pg));
    pairs = !pairs;
    producers;
  }

let size inst = inst.n

let cns inst = inst.cns

type encoded = {
  sat : Sat.t;
  assign_var : int array array;
}

let is_alu inst node = inst.demand.(node).Resource.alus > 0

(* Sinz sequential-counter encoding of [sum lits <= k]. *)
let at_most sat lits k =
  let lits = Array.of_list lits in
  let m = Array.length lits in
  if k < 0 then Sat.add_clause sat []
  else if k = 0 then Array.iter (fun l -> Sat.add_clause sat [ -l ]) lits
  else if m > k then begin
    (* s.(i).(j): at least j+1 of lits.(0..i) are true. *)
    let s = Array.init (m - 1) (fun _ -> Array.init k (fun _ -> Sat.new_var sat)) in
    Sat.add_clause sat [ -lits.(0); s.(0).(0) ];
    for j = 1 to k - 1 do
      Sat.add_clause sat [ -s.(0).(j) ]
    done;
    for i = 1 to m - 2 do
      Sat.add_clause sat [ -lits.(i); s.(i).(0) ];
      Sat.add_clause sat [ -s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to k - 1 do
        Sat.add_clause sat [ -lits.(i); -s.(i - 1).(j - 1); s.(i).(j) ];
        Sat.add_clause sat [ -s.(i - 1).(j); s.(i).(j) ]
      done;
      Sat.add_clause sat [ -lits.(i); -s.(i - 1).(k - 1) ]
    done;
    if m >= 2 then Sat.add_clause sat [ -lits.(m - 1); -s.(m - 2).(k - 1) ]
  end

let counter sat lits ~width =
  let lits = Array.of_list lits in
  let m = Array.length lits in
  let w = min m width in
  if w <= 0 then [||]
  else begin
    (* s.(i).(j): at least j+1 of lits.(0..i) are true — one-directional
       (count => counter var), triangular allocation: row i only needs
       columns up to min (i+1) w. *)
    let s =
      Array.init m (fun i -> Array.init (min (i + 1) w) (fun _ -> Sat.new_var sat))
    in
    Sat.add_clause sat [ -lits.(0); s.(0).(0) ];
    for i = 1 to m - 1 do
      Sat.add_clause sat [ -lits.(i); s.(i).(0) ];
      Sat.add_clause sat [ -s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to Array.length s.(i) - 1 do
        Sat.add_clause sat [ -lits.(i); -s.(i - 1).(j - 1); s.(i).(j) ];
        if j < Array.length s.(i - 1) then
          Sat.add_clause sat [ -s.(i - 1).(j); s.(i).(j) ]
      done
    done;
    s.(m - 1)
  end

(* Adds x(n,c) with exactly-one rows and the r(s,c) receive indicators —
   everything about the instance that does not depend on the bound k. *)
let structure sat inst =
  let x =
    Array.init inst.n (fun _ -> Array.init inst.cns (fun _ -> Sat.new_var sat))
  in
  (* Exactly one CN per node. *)
  for nd = 0 to inst.n - 1 do
    Sat.add_clause sat (Array.to_list x.(nd));
    for a = 0 to inst.cns - 1 do
      for b = a + 1 to inst.cns - 1 do
        Sat.add_clause sat [ -x.(nd).(a); -x.(nd).(b) ]
      done
    done
  done;
  (* Receive indicators: r.(s).(c) is forced whenever a consumer of
     producer s sits on c while s itself does not. *)
  let recv = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace recv s (Array.init inst.cns (fun _ -> Sat.new_var sat)))
    inst.producers;
  List.iter
    (fun (s, m) ->
      let r = Hashtbl.find recv s in
      for c = 0 to inst.cns - 1 do
        Sat.add_clause sat [ -x.(m).(c); x.(s).(c); r.(c) ]
      done)
    inst.pairs;
  (x, recv)

(* The strict-mode structural wire constraints.  The MUX fan-in bound is
   k-independent; the single-out-wire payload groups (count <= k) are
   returned for the caller to bound — directly or through a ladder. *)
let strict_structure sat inst x =
  let e =
    Array.init inst.cns (fun _ -> Array.init inst.cns (fun _ -> Sat.new_var sat))
  in
  List.iter
    (fun (s, m) ->
      for a = 0 to inst.cns - 1 do
        for b = 0 to inst.cns - 1 do
          if a <> b then
            Sat.add_clause sat [ -x.(s).(a); -x.(m).(b); e.(a).(b) ]
        done
      done)
    inst.pairs;
  for b = 0 to inst.cns - 1 do
    let ins = ref [] in
    for a = inst.cns - 1 downto 0 do
      if a <> b then ins := e.(a).(b) :: !ins
    done;
    at_most sat !ins inst.max_in
  done;
  (* Single-out-wire payload: distinct values leaving a CN, <= k
     (each flat CN owns one broadcastable outgoing wire). *)
  let w = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace w s (Array.init inst.cns (fun _ -> Sat.new_var sat)))
    inst.producers;
  List.iter
    (fun (s, m) ->
      let ws = Hashtbl.find w s in
      for c = 0 to inst.cns - 1 do
        Sat.add_clause sat [ -x.(s).(c); x.(m).(c); ws.(c) ]
      done)
    inst.pairs;
  List.map
    (fun c -> List.map (fun s -> (Hashtbl.find w s).(c)) inst.producers)
    (List.init inst.cns (fun c -> c))

(* Per-CN windows: the cluster_mii <= k terms, group by group.  Each
   group is a literal set whose count must stay <= mult*k; [bound] is
   how the caller enforces that (direct Sinz clauses for a fixed k,
   counter-ladder assumptions for the incremental path).  A zero
   multiplier means the class has no capacity at all: its literals are
   forced false outright, identically at every k. *)
let per_cn_groups sat inst (x, recv) ~bound =
  for c = 0 to inst.cns - 1 do
    let cap = inst.capacity.(c) in
    let issue = Resource.issue_slots cap in
    let all = ref [] and alus = ref [] and ags = ref [] in
    for nd = inst.n - 1 downto 0 do
      all := x.(nd).(c) :: !all;
      if is_alu inst nd then alus := x.(nd).(c) :: !alus
      else ags := x.(nd).(c) :: !ags
    done;
    let recvs = List.map (fun s -> (Hashtbl.find recv s).(c)) inst.producers in
    let force_false lits = List.iter (fun l -> Sat.add_clause sat [ -l ]) lits in
    (* total issue window (Resource.fits issue term) *)
    if issue = 0 then force_false !all else bound !all issue;
    (* AG class window *)
    if cap.Resource.ags = 0 then force_false !ags
    else bound !ags cap.Resource.ags;
    (* ALU ops + receive primitives on the ALU issue slot *)
    if cap.Resource.alus = 0 then force_false !alus
    else bound (!alus @ recvs) cap.Resource.alus;
    (* incoming-wire serialisation: ceil (recv / max_in) <= k *)
    if inst.max_in = 0 then force_false recvs else bound recvs inst.max_in
  done

let encode ?(strict = false) inst ~k =
  let sat = Sat.create () in
  let x, recv = structure sat inst in
  per_cn_groups sat inst (x, recv) ~bound:(fun lits mult ->
      at_most sat lits (mult * k));
  if strict then
    List.iter
      (fun ws -> at_most sat ws k)
      (strict_structure sat inst x);
  { sat; assign_var = x }

type incremental = {
  enc : encoded;
  max_k : int;
  bounds : (int array * int) list;
}

let make ?(strict = false) ?reduce_start inst ~max_k =
  if max_k < 1 then invalid_arg "Encode.make: max_k must be >= 1";
  let sat = Sat.create ?reduce_start () in
  let x, recv = structure sat inst in
  let bounds = ref [] in
  let bound lits mult =
    (* Ladder wide enough for the loosest probe: at bound mult*max_k the
       assumption literal is out.(mult*max_k), hence width max_k*mult+1.
       A group smaller than its tightest bound never constrains and gets
       no ladder at all. *)
    let out = counter sat lits ~width:((mult * max_k) + 1) in
    if Array.length out > 0 then bounds := (out, mult) :: !bounds
  in
  per_cn_groups sat inst (x, recv) ~bound;
  if strict then
    List.iter (fun ws -> bound ws 1) (strict_structure sat inst x);
  { enc = { sat; assign_var = x }; max_k; bounds = List.rev !bounds }

let assumptions inc ~k =
  if k < 1 || k > inc.max_k then
    invalid_arg
      (Printf.sprintf "Encode.assumptions: k=%d outside [1, %d]" k inc.max_k);
  List.filter_map
    (fun (out, mult) ->
      let b = mult * k in
      if b < Array.length out then Some (-out.(b)) else None)
    inc.bounds

let decode inst { sat; assign_var } =
  Array.init inst.n (fun nd ->
      let c = ref (-1) in
      for i = inst.cns - 1 downto 0 do
        if Sat.value sat assign_var.(nd).(i) then c := i
      done;
      !c)

let receives_on inst assignment c =
  List.length
    (List.filter
       (fun s ->
         assignment.(s) <> c
         && List.exists
              (fun (s', m) -> s' = s && assignment.(m) = c)
              inst.pairs)
       inst.producers)

let cluster_mii_of_assignment inst assignment =
  let mii = ref 1 in
  for c = 0 to inst.cns - 1 do
    let demand = ref Resource.zero in
    Array.iteri
      (fun nd cn -> if cn = c then demand := Resource.add !demand inst.demand.(nd))
      assignment;
    let receives = receives_on inst assignment c in
    mii :=
      max !mii
        (Cost.cluster_mii ~demand:!demand ~capacity:inst.capacity.(c) ~receives
           ~max_in:inst.max_in)
  done;
  !mii

let copies_of_assignment inst assignment =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s, m) ->
      if assignment.(s) <> assignment.(m) then
        Hashtbl.replace seen (s, assignment.(m)) ())
    inst.pairs;
  Hashtbl.length seen
