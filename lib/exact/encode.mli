(** CNF encoder: one flat ICA instance, one cluster-MII bound [k],
    one propositional formula.

    The formula is satisfiable iff there is an assignment of every DDG
    node to a CN whose {e projected final MII} — computed with exactly
    the cost terms of {!Hca_core.Cost.cluster_mii} — is at most [k].
    Variables:

    - [x(n,c)]: node [n] sits on CN [c] (exactly-one per node);
    - [r(s,c)]: the value of producer [s] is received on CN [c]
      (forced true whenever a consumer of [s] sits on [c] while [s]
      does not — the receive primitive of §4.2);
    - in strict mode, [e(a,b)]: some value flows from CN [a] to CN [b]
      (the real-arc indicator bounded by the {!Hca_machine.Pattern_graph}
      MUX capacity), and [w(s,c)]: the value of [s] leaves CN [c]
      (single-out-wire payload serialisation).

    Cardinality bounds use the Sinz sequential-counter encoding.

    Strict mode reproduces the {e structural} wire constraints the SEE
    enforces through {!Hca_machine.Copy_flow}; the default relaxed mode
    drops them, because on the complete flat PG the Route Allocator can
    always realise any flow by detouring (at the price of extra forward
    ops that only increase cluster load) — so the relaxed optimum is a
    certified lower bound on any SEE-achievable final MII, which is what
    the optimality-gap report needs. *)

open Hca_core

(** A digested flat instance, independent of any particular bound. *)
type instance

val of_problem : Problem.t -> instance
(** @raise Invalid_argument if the problem has pinned (port) nodes —
    the oracle handles whole-graph flat instances only. *)

val size : instance -> int
(** Number of free DDG nodes. *)

val cns : instance -> int

val at_most : Sat.t -> int list -> int -> unit
(** [at_most sat lits k] constrains at most [k] of [lits] to be true
    (Sinz sequential counter; no clauses when the bound is slack).
    Exposed as the reusable cardinality brick of the encoding. *)

val counter : Sat.t -> int list -> width:int -> int array
(** [counter sat lits ~width] lays a one-directional Sinz counter
    ladder over [lits] and returns its output column [out]:
    [out.(j)] is implied whenever {e more than} [j] of the literals are
    true, for [j < min (length lits) width].  "Count ≤ b" is then the
    single assumption [¬out.(b)] — the incremental probing brick: the
    ladder clauses are bound-independent, so every probe of a different
    [b] reuses them (and everything learned from them).  Only the
    count→counter direction is encoded; that keeps the ladder
    equisatisfiable for at-most bounds while halving the clauses. *)

type encoded = {
  sat : Sat.t;
  assign_var : int array array;  (** [assign_var.(n).(c)] = DIMACS var of x(n,c) *)
}

val encode : ?strict:bool -> instance -> k:int -> encoded
(** Builds the formula for cluster-MII bound [k].  [strict] (default
    [false]) adds the MUX fan-in and out-wire constraints. *)

(** An instance encoded {e once} for a whole family of bounds: the
    k-independent structure plus one counter ladder per capacity group,
    each probe "cluster MII ≤ k" expressed purely through assumption
    literals — the clause set never changes between probes, so learnt
    clauses, activities and phases carry over (DESIGN.md §16). *)
type incremental = {
  enc : encoded;  (** the shared solver and x(n,c) variables *)
  max_k : int;  (** loosest probeable bound *)
  bounds : (int array * int) list;
      (** per capacity group: ladder outputs and the multiplier [mult]
          such that the group's count must stay ≤ [mult]·k *)
}

val make : ?strict:bool -> ?reduce_start:int -> instance -> max_k:int -> incremental
(** Builds the probe-many encoding.  [max_k] bounds the loosest probe
    ({!assumptions} refuses larger k); ladder widths are sized to it,
    so keep it at the first upper bound of the search (the heuristic
    incumbent).  [reduce_start] is passed to {!Sat.create}.
    @raise Invalid_argument if [max_k < 1]. *)

val assumptions : incremental -> k:int -> int list
(** The assumption literals expressing "every capacity group within its
    k-window" — pass to {!Sat.solve}.  Groups too small to ever exceed
    their window contribute nothing.
    @raise Invalid_argument if [k] is outside [1, max_k]. *)

val decode : instance -> encoded -> int array
(** Reads the model back as a node -> CN map (indexed by problem-node
    id, which for a flat instance is also the global instruction id).
    Call only after [Sat.solve] returned [Sat]. *)

val cluster_mii_of_assignment : instance -> int array -> int
(** Recomputes [max] over CNs of {!Hca_core.Cost.cluster_mii} for a
    decoded assignment — the independent check that the clauses and the
    cost terms agree (used by the oracle and the tests). *)

val copies_of_assignment : instance -> int array -> int
(** Inter-CN value hops of an assignment, {!Hca_machine.Copy_flow}
    convention: a value broadcast to two CNs counts twice. *)
