(** The exact cluster-assignment oracle: provably optimal (or certified
    lower/upper bounded) flat ICA via the CDCL solver.

    The oracle binary-searches the smallest cluster-MII bound [k] for
    which {!Encode} is satisfiable, between the kernel's iniMII and the
    trivial all-on-one-CN upper bound, under a wall-clock budget.  Its
    result mirrors the {!Hca_baseline.Flat_ica.t} record shape so the
    comparison tables can treat both uniformly, plus a [status]:

    - [Optimal]: [final_mii] is the proven optimum — every smaller
      bound was refuted (or the optimum equals iniMII, which nothing
      can beat);
    - [Feasible]: a model exists at [final_mii] but smaller bounds ran
      out of budget before being decided;
    - [Timeout]: the budget expired before any model was found;
    - [Unsat]: the whole capped search range was refuted (only possible
      when [max_ii] caps the range below the instance size).

    Any SEE or cost-function change can be regression-checked against
    the oracle: with the default relaxed encoding the oracle's
    [final_mii] is a certified lower bound on any achievable flat
    projected MII, so [heuristic < oracle] is always a bug. *)

open Hca_ddg
open Hca_machine
open Hca_core

type status = Optimal | Feasible | Timeout | Unsat

type t = {
  status : status;
  final_mii : int option;  (** [max iniMII k] of the best model found *)
  lower_bound : int;
      (** certified: no assignment achieves a final MII below this *)
  assignment : int array option;  (** instruction -> CN of the best model *)
  copies : int;  (** inter-CN value hops of the best model *)
  ii_used : int;  (** cluster window of the best model; [0] if none *)
  explored : int;  (** SAT conflicts summed over every solve call *)
  runtime_s : float;
  error : string option;
}

val problem_of : Dspfabric.t -> Ddg.t -> Problem.t
(** The same flat K-view {!Hca_baseline.Flat_ica} searches: every CN
    reachable from every other, per-CN port limits only. *)

val run :
  ?strict:bool ->
  ?budget_s:float ->
  ?max_conflicts:int ->
  ?max_ii:int ->
  ?jobs:int ->
  Dspfabric.t ->
  Ddg.t ->
  t
(** [budget_s] (default [10.]) bounds the whole MII search wall-clock;
    [strict] adds the structural MUX/wire clauses (see {!Encode});
    [max_ii] caps the search range (default: the instance size, whose
    all-on-one-CN assignment is always feasible).

    [max_conflicts] bounds each probe's solver by a {e conflict} count
    instead of the wall clock: with [budget_s = infinity] and a
    conflict budget the whole oracle verdict (status, bounds, model)
    is a pure function of the instance — what the differential fuzz
    harness needs so that every printed verdict replays verbatim.

    [jobs] (default 1) probes that many MII bounds concurrently per
    search round, each with its own solver instance, turning the binary
    search into an n-ary one.  [jobs = 1] reproduces the sequential
    binary search exactly; at any [jobs] the verdicts are merged in
    ascending-bound order, so the certified optimum and the returned
    model depend only on the instance, never on domain scheduling (the
    [explored] conflict count does vary with the probe set). *)

val status_to_string : status -> string

val pp : Format.formatter -> t -> unit
