(** The exact cluster-assignment oracle: provably optimal (or certified
    lower/upper bounded) flat ICA via the incremental CDCL solver.

    The oracle encodes the instance {e once} ({!Encode.make}) and walks
    the cluster-MII bound [k] {e downward} from the heuristic incumbent
    (bisecting only while it has neither an incumbent nor a model),
    each probe a
    [Sat.solve ~assumptions] call against the shared solver: every
    learnt clause, variable activity and saved phase carries from one
    probe to the next, and by monotonicity a single [Unsat] answer at
    the end certifies optimality.  Its result mirrors the
    {!Hca_baseline.Flat_ica.t} record shape so the comparison tables can
    treat both uniformly, plus a [status]:

    - [Optimal]: [final_mii] is the proven optimum — every smaller
      bound was refuted (or the optimum equals iniMII, which nothing
      can beat);
    - [Feasible]: a model exists at [final_mii] but smaller bounds ran
      out of budget before being decided;
    - [Timeout]: the budget expired before any model was found;
    - [Unsat]: the whole capped search range was refuted (only possible
      when [max_ii] caps the range below the instance size).

    Any SEE or cost-function change can be regression-checked against
    the oracle: with the default relaxed encoding the oracle's
    [final_mii] is a certified lower bound on any achievable flat
    projected MII, so [heuristic < oracle] is always a bug. *)

open Hca_ddg
open Hca_machine
open Hca_core

type status = Optimal | Feasible | Timeout | Unsat

(** One "cluster MII ≤ k" solver call, with the {e deltas} of the
    shared solver's cumulative counters — the per-probe cost record
    behind the NDJSON rows and [hca exact] output. *)
type probe = {
  k : int;  (** the probed bound *)
  verdict : Sat.result;
  conflicts : int;
  propagations : int;
  learnt : int;  (** clauses learned during this probe *)
  reused : int;
      (** propagations/conflicts fired by clauses learned in {e earlier}
          probes — the clause-reuse payoff *)
  time_s : float;
}

type t = {
  status : status;
  final_mii : int option;  (** [max iniMII k] of the best model found *)
  lower_bound : int;
      (** certified: no assignment achieves a final MII below this *)
  assignment : int array option;  (** instruction -> CN of the best model *)
  copies : int;  (** inter-CN value hops of the best model *)
  ii_used : int;  (** cluster window of the best model; [0] if none *)
  explored : int;  (** SAT conflicts summed over every probe *)
  propagations : int;  (** unit propagations summed over every probe *)
  reused_hits : int;  (** cross-probe reused-clause hits (see {!probe}) *)
  learnt_total : int;  (** clauses learned across the whole search *)
  probes : probe list;  (** in probe order *)
  runtime_s : float;
  alloc_mb : float;
      (** MB allocated during the search ({!Report.Alloc_meter}) *)
  minor_gcs : int;
  error : string option;
}

val problem_of : Dspfabric.t -> Ddg.t -> Problem.t
(** The same flat K-view {!Hca_baseline.Flat_ica} searches: every CN
    reachable from every other, per-CN port limits only. *)

val run :
  ?strict:bool ->
  ?budget_s:float ->
  ?max_conflicts:int ->
  ?max_ii:int ->
  ?incumbent:int ->
  ?reuse:bool ->
  ?reduce_start:int ->
  ?jobs:int ->
  Dspfabric.t ->
  Ddg.t ->
  t
(** [budget_s] (default [10.]) bounds the whole MII search wall-clock;
    [strict] adds the structural MUX/wire clauses (see {!Encode});
    [max_ii] caps the search range (default: the instance size, whose
    all-on-one-CN assignment is always feasible).

    [incumbent] seeds the walk: the first probe is the incumbent
    (clamped into the open range) instead of the range top.  Pass the
    heuristic's achieved flat MII — in relaxed mode it is always
    satisfiable, so the first probe lands a model immediately and the
    budget is spent tightening, not rediscovering.  A too-low incumbent
    only costs one extra Unsat probe; correctness never depends on it.

    [max_conflicts] bounds each probe's solver by a {e conflict} count
    instead of the wall clock: with [budget_s = infinity] and a
    conflict budget the whole oracle verdict (status, bounds, model)
    is a pure function of the instance — what the differential fuzz
    harness needs so that every printed verdict replays verbatim.

    [reuse] (default [true]) keeps learnt clauses across probes; with
    [reuse = false] the learnt DB is dropped before each probe
    ({!Sat.clear_learnt}) — the control arm of the equivalence property
    tests.  Verdicts and certified bounds are identical either way,
    only the work differs.  [reduce_start] tunes the clause-DB
    reduction trigger (see {!Sat.create}).

    [jobs] is accepted for API compatibility and ignored: the probes of
    one search now share a single solver (that sharing, not probe
    parallelism, is where the PR-8 speedup comes from), so the verdict
    is identical at every [jobs] by construction. *)

val status_to_string : status -> string

val pp : Format.formatter -> t -> unit
