(** Self-contained incremental CDCL SAT solver for the exact
    cluster-assignment oracle — no external solver dependency.

    The design is the MiniSat recipe rebuilt on the flat data layout of
    the SEE hot path (DESIGN.md §15): clause literals live in one packed
    int arena (two header words — size/LBD/flags and the birth-probe
    stamp — followed by the literals), watch lists are stride-2 int
    arrays carrying a blocker literal next to each clause reference, and
    the propagate/analyze loop touches no boxed data.  On top of the
    classic pieces — two-watched-literal unit propagation, first-UIP
    conflict-clause learning, VSIDS-style variable activities served
    from a binary heap, phase saving, Luby-sequence restarts — this
    revision adds the machinery the incremental oracle needs:

    - {b assumption solving that preserves the solver}: learned
      clauses, variable activities and saved phases all survive a
      [solve ~assumptions] call, so consecutive "cluster MII ≤ k"
      probes of one kernel reuse each other's conflict analysis;
    - {b LBD-scored clause-DB reduction}: learnt clauses carry the
      number of distinct decision levels in them (their glue); when the
      live learnt count crosses a growing limit, the worst half (by
      LBD, ties broken by age) is dropped and the arena compacted.
      Glue clauses (LBD ≤ 3), locked reasons and problem clauses are
      never deleted, so every model still satisfies the input formula;
    - {b probe epochs}: {!new_probe} advances an epoch stamped into
      every clause learned afterwards; a propagation or conflict fired
      by a clause born in an earlier epoch counts as a
      {e reused-clause hit} — the direct measure of how much work the
      incremental search avoids re-deriving.

    Literals use the DIMACS convention: variable [v >= 1], literal
    [+v] for the positive phase and [-v] for the negative one. *)

type t

type result = Sat | Unsat | Unknown

val create : ?reduce_start:int -> unit -> t
(** [reduce_start] (default 2000) is the live-learnt-clause count that
    triggers the first DB reduction; the limit grows after each
    reduction.  Tests pin it low to exercise the reduction path. *)

val new_var : t -> int
(** Allocates and returns the next variable (numbered from 1). *)

val nvars : t -> int

val add_clause : t -> int list -> unit
(** Adds one clause over already-allocated variables.  The empty clause
    (or a clause falsified at level 0) makes the instance trivially
    unsat.  May be called between {!solve} calls (incremental use).
    @raise Invalid_argument on a zero or out-of-range literal. *)

val solve :
  ?assumptions:int list -> ?deadline:float -> ?max_conflicts:int -> t -> result
(** Decides the current clause set.

    [assumptions] are literals decided (in order) before any free
    decision; if the clause set forces their negation the answer is
    [Unsat] {e under the assumptions} — the clause set, its learnt
    database, activities and phases all stay reusable for the next
    call.  [deadline] is an absolute wall-clock instant
    ({!Hca_util.Clock.now} seconds) and [max_conflicts] a per-call
    conflict budget; crossing either returns [Unknown]. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer.
    @raise Invalid_argument if the last call did not return [Sat]. *)

val new_probe : t -> unit
(** Advances the probe epoch: clauses learned from now on are stamped
    with the new epoch, and unit propagations or conflicts fired by
    learnt clauses of older epochs count into {!reused_hits}. *)

val clear_learnt : t -> unit
(** Backtracks to level 0 and drops every learnt clause (compacting
    the arena) — the "no clause reuse" mode of the equivalence
    property tests.  Level-0 implications survive as reason-less trail
    facts (analysis never dereferences level-0 reasons); problem
    clauses, activities and phases survive too. *)

(** {2 Statistics} — cumulative across every [solve] call. *)

val conflicts : t -> int
(** Total conflicts (the oracle's [explored] analogue of the SEE
    state counter). *)

val decisions : t -> int

val propagations : t -> int
(** Literals enqueued by unit propagation. *)

val learnt_live : t -> int
(** Learnt clauses currently in the database. *)

val learnt_total : t -> int
(** Clauses learned since [create] (deleted ones included). *)

val deleted_total : t -> int
(** Learnt clauses dropped by DB reductions and {!clear_learnt}. *)

val reused_hits : t -> int
(** Propagations/conflicts fired by learnt clauses born in an earlier
    probe epoch — the clause-reuse payoff across {!new_probe} calls. *)

val probe_id : t -> int

val fold_problem_clauses : t -> ('a -> int list -> 'a) -> 'a -> 'a
(** Folds over the stored problem (non-learnt) clauses as DIMACS
    literal lists — the hook the model-check property tests use to
    verify that a model still satisfies the input formula after DB
    reductions.  Clauses satisfied at level 0 when added (and level-0
    unit implications) are not stored; they hold in any model extending
    the level-0 trail. *)

val pp_stats : Format.formatter -> t -> unit
