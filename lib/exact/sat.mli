(** Self-contained CDCL SAT solver for the exact cluster-assignment
    oracle — no external solver dependency, ~500 lines of OCaml.

    The design is the classic MiniSat recipe: two-watched-literal unit
    propagation, first-UIP conflict-clause learning, VSIDS-style
    variable activities served from a binary heap, phase saving, and
    Luby-sequence restarts.  Clause deletion is deliberately omitted:
    the oracle bounds every call by a wall-clock deadline and the
    encoded instances are kernel-sized, so the learnt database stays
    small enough to keep.

    Literals use the DIMACS convention: variable [v >= 1], literal
    [+v] for the positive phase and [-v] for the negative one. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Allocates and returns the next variable (numbered from 1). *)

val nvars : t -> int

val add_clause : t -> int list -> unit
(** Adds one clause over already-allocated variables.  The empty clause
    (or a clause falsified at level 0) makes the instance trivially
    unsat.  May be called between {!solve} calls (incremental use).
    @raise Invalid_argument on a zero or out-of-range literal. *)

val solve :
  ?assumptions:int list -> ?deadline:float -> ?max_conflicts:int -> t -> result
(** Decides the current clause set.

    [assumptions] are literals decided (in order) before any free
    decision; if the clause set forces their negation the answer is
    [Unsat] {e under the assumptions} — the clause set itself stays
    reusable.  [deadline] is an absolute wall-clock instant
    ({!Hca_util.Clock.now} seconds) and
    [max_conflicts] a conflict budget; crossing either returns
    [Unknown]. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer.
    @raise Invalid_argument if the last call did not return [Sat]. *)

val conflicts : t -> int
(** Total conflicts across every [solve] call (the oracle's
    [explored] analogue of the SEE state counter). *)

val decisions : t -> int

val pp_stats : Format.formatter -> t -> unit
