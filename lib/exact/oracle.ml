open Hca_ddg
open Hca_machine
open Hca_core

type status = Optimal | Feasible | Timeout | Unsat

type probe = {
  k : int;
  verdict : Sat.result;
  conflicts : int;
  propagations : int;
  learnt : int;
  reused : int;
  time_s : float;
}

type t = {
  status : status;
  final_mii : int option;
  lower_bound : int;
  assignment : int array option;
  copies : int;
  ii_used : int;
  explored : int;
  propagations : int;
  reused_hits : int;
  learnt_total : int;
  probes : probe list;
  runtime_s : float;
  alloc_mb : float;
  minor_gcs : int;
  error : string option;
}

let problem_of fabric ddg =
  let cns = Dspfabric.total_cns fabric in
  let leaf = Dspfabric.level_view fabric ~level:(Dspfabric.depth fabric - 1) in
  let pg =
    Pattern_graph.complete
      ~name:(Printf.sprintf "exact-K%d" cns)
      (* One PG node per CN, each with that CN's own table, so the
         encoding covers heterogeneous descriptions too. *)
      ~capacities:(Array.init cns (Machine_desc.cn_table fabric))
      ~max_in:leaf.Dspfabric.mux_capacity
  in
  Problem.of_ddg ~name:(Ddg.name ddg ^ ".exact") ~ddg ~pg ()

let run ?(strict = false) ?(budget_s = 10.) ?max_conflicts ?max_ii ?incumbent
    ?(reuse = true) ?reduce_start ?(jobs = 1) fabric ddg =
  ignore jobs;
  Hca_obs.Obs.span "oracle.run" ~args:[ ("kernel", Ddg.name ddg) ]
  @@ fun () ->
  let t0 = Hca_util.Clock.now () in
  let meter = Report.Alloc_meter.start () in
  let deadline = t0 +. budget_s in
  let problem = problem_of fabric ddg in
  let inst = Encode.of_problem problem in
  let ini = Mii.mii ddg (Dspfabric.resources fabric) in
  let top =
    match max_ii with Some m -> m | None -> max ini (Encode.size inst)
  in
  (* Invariant: every bound below [!lo] is refuted; [!best] is the
     smallest satisfiable bound met so far, with its model. *)
  let lo = ref ini in
  let hi = ref top in
  let best = ref None in
  let timed_out = ref false in
  let explored = ref 0 in
  let error = ref None in
  let probes = ref [] in
  let first = ref true in
  (* One encoding, one solver, many probes: each "cluster MII <= k" is
     a set of assumption literals, so everything learned at one bound
     carries to the next (DESIGN.md §16). *)
  let inc =
    if !lo <= !hi then Some (Encode.make ~strict ?reduce_start inst ~max_k:top)
    else None
  in
  (match inc with
  | None -> ()
  | Some inc ->
      let sat = inc.Encode.enc.Encode.sat in
      while !lo <= !hi && (not !timed_out) && !error = None do
        if Hca_util.Clock.now () > deadline then timed_out := true
        else begin
          (* Probe policy.  First probe: the heuristic incumbent
             (clamped into the open range) — in relaxed mode it is
             satisfiable by construction, and its model usually
             recomputes below the probed bound, jumping several values
             at once.  Once any model is in hand, walk the upper bound
             downward: SAT probes keep jumping, and the single Unsat
             probe that ends the walk certifies optimality by
             monotonicity.  With no incumbent and no model yet, bisect —
             probing the top of a wide-open range wastes the budget on
             trivially-loose bounds. *)
          let k =
            match (!first, incumbent, !best) with
            | true, Some m, _ -> max !lo (min m !hi)
            | _, _, Some _ -> !hi
            | _ -> (!lo + !hi) / 2
          in
          first := false;
          if not reuse then Sat.clear_learnt sat;
          Sat.new_probe sat;
          let c0 = Sat.conflicts sat
          and p0 = Sat.propagations sat
          and l0 = Sat.learnt_total sat
          and r0 = Sat.reused_hits sat
          and pt0 = Hca_util.Clock.now () in
          let verdict =
            Hca_obs.Obs.span "oracle.probe"
              ~args:[ ("k", string_of_int k) ]
              (fun () ->
                Sat.solve
                  ~assumptions:(Encode.assumptions inc ~k)
                  ~deadline ?max_conflicts sat)
          in
          let d_conflicts = Sat.conflicts sat - c0
          and d_props = Sat.propagations sat - p0
          and d_learnt = Sat.learnt_total sat - l0
          and d_reused = Sat.reused_hits sat - r0 in
          Hca_obs.Obs.count "sat.conflicts" d_conflicts;
          Hca_obs.Obs.count "sat.propagations" d_props;
          Hca_obs.Obs.count "sat.learnt" d_learnt;
          Hca_obs.Obs.count "sat.reused_hits" d_reused;
          (* Live registry mirrors, summed per probe (never per
             conflict — the solver loop stays untouched). *)
          Hca_obs.Obs.Registry.inc "hca_oracle_probes_total";
          Hca_obs.Obs.Registry.inc ~by:d_conflicts "hca_oracle_conflicts_total";
          Hca_obs.Obs.Registry.inc ~by:d_props "hca_oracle_propagations_total";
          Hca_obs.Obs.Registry.inc ~by:d_learnt "hca_oracle_learnt_total";
          Hca_obs.Obs.Registry.inc ~by:d_reused "hca_oracle_reused_hits_total";
          probes :=
            {
              k;
              verdict;
              conflicts = d_conflicts;
              propagations = d_props;
              learnt = d_learnt;
              reused = d_reused;
              time_s = Hca_util.Clock.now () -. pt0;
            }
            :: !probes;
          explored := !explored + d_conflicts;
          match verdict with
          | Sat.Sat ->
              let a = Encode.decode inst inc.Encode.enc in
              (* Independent re-check: the clauses and the cost terms
                 must agree on what they bounded. *)
              let got = Encode.cluster_mii_of_assignment inst a in
              if got > k && not strict then
                error :=
                  Some
                    (Printf.sprintf
                       "internal: model at k=%d recomputes to cluster MII %d" k
                       got)
              else begin
                (* In relaxed mode the recomputed MII [got] is itself a
                   feasible bound (the same model satisfies every window
                   at [got]); strict mode adds k-scaled wire constraints
                   the recompute does not cover, so only the probed
                   bound is certified there. *)
                let m = if strict then k else min k got in
                (match !best with
                | Some (k', _) when k' <= m -> ()
                | _ -> best := Some (m, a));
                hi := min !hi (m - 1)
              end
          | Sat.Unsat -> lo := max !lo (k + 1)
          | Sat.Unknown -> timed_out := true
        end
      done);
  let status, final_mii, assignment, ii_used =
    match !best with
    | Some (k, a) ->
        let st = if !lo >= k then Optimal else Feasible in
        (st, Some (max ini k), Some a, k)
    | None ->
        if !error <> None || !timed_out then (Timeout, None, None, 0)
        else (Unsat, None, None, 0)
  in
  let sat_stats f = match inc with Some i -> f i.Encode.enc.Encode.sat | None -> 0 in
  {
    status;
    final_mii;
    lower_bound = max ini !lo;
    assignment;
    copies =
      (match !best with
      | Some (_, a) -> Encode.copies_of_assignment inst a
      | None -> 0);
    ii_used;
    explored = !explored;
    propagations = sat_stats Sat.propagations;
    reused_hits = sat_stats Sat.reused_hits;
    learnt_total = sat_stats Sat.learnt_total;
    probes = List.rev !probes;
    runtime_s = Hca_util.Clock.now () -. t0;
    alloc_mb = Report.Alloc_meter.mb meter;
    minor_gcs = Report.Alloc_meter.minor_gcs meter;
    error =
      (match (!error, !timed_out) with
      | (Some _ as e), _ -> e
      | None, true -> Some "search budget exhausted"
      | None, false -> None);
  }

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | Timeout -> "timeout"
  | Unsat -> "unsat"

let pp ppf t =
  Format.fprintf ppf
    "status=%s final=%s lower>=%d copies=%d conflicts=%d props=%d reused=%d \
     probes=%d t=%.2fs"
    (status_to_string t.status)
    (match t.final_mii with Some m -> string_of_int m | None -> "-")
    t.lower_bound t.copies t.explored t.propagations t.reused_hits
    (List.length t.probes) t.runtime_s;
  match t.error with
  | Some e -> Format.fprintf ppf " (%s)" e
  | None -> ()
