open Hca_ddg
open Hca_machine
open Hca_core

type status = Optimal | Feasible | Timeout | Unsat

type t = {
  status : status;
  final_mii : int option;
  lower_bound : int;
  assignment : int array option;
  copies : int;
  ii_used : int;
  explored : int;
  runtime_s : float;
  error : string option;
}

let problem_of fabric ddg =
  let cns = Dspfabric.total_cns fabric in
  let leaf = Dspfabric.level_view fabric ~level:(Dspfabric.depth fabric - 1) in
  let pg =
    Pattern_graph.complete
      ~name:(Printf.sprintf "exact-K%d" cns)
      ~capacities:(Array.make cns Resource.cn)
      ~max_in:leaf.Dspfabric.mux_capacity
  in
  Problem.of_ddg ~name:(Ddg.name ddg ^ ".exact") ~ddg ~pg ()

let run ?(strict = false) ?(budget_s = 10.) ?max_conflicts ?max_ii ?(jobs = 1)
    fabric ddg =
  Hca_obs.Obs.span "oracle.run" ~args:[ ("kernel", Ddg.name ddg) ]
  @@ fun () ->
  let t0 = Hca_util.Clock.now () in
  let deadline = t0 +. budget_s in
  let problem = problem_of fabric ddg in
  let inst = Encode.of_problem problem in
  let ini = Mii.mii ddg (Dspfabric.resources fabric) in
  let top =
    match max_ii with Some m -> m | None -> max ini (Encode.size inst)
  in
  (* Invariant: every bound below [!lo] is refuted; [!best] is the
     smallest satisfiable bound met so far, with its model. *)
  let lo = ref ini in
  let hi = ref top in
  let best = ref None in
  let timed_out = ref false in
  let explored = ref 0 in
  let error = ref None in
  while !lo <= !hi && (not !timed_out) && !error = None do
    (* Probe points for this round: the binary-search midpoint at
       [jobs = 1], otherwise [width] bounds splitting [lo..hi] into
       equal slices — an n-ary search whose every verdict tightens one
       of the two bounds, probed concurrently on the pool.  The merge
       below walks the verdicts in ascending-k order, so the outcome
       does not depend on domain scheduling. *)
    let ks =
      let width = min jobs (!hi - !lo + 1) in
      if width <= 1 then [ (!lo + !hi) / 2 ]
      else begin
        let span = !hi - !lo + 1 in
        List.sort_uniq compare
          (List.init width (fun i -> !lo + (span * (i + 1) / (width + 1))))
      end
    in
    let verdicts =
      Hca_util.Domain_pool.parallel_map ~jobs
        (fun k ->
          Hca_obs.Obs.span "oracle.probe"
            ~args:[ ("k", string_of_int k) ]
            (fun () ->
              let enc = Encode.encode ~strict inst ~k in
              let v = Sat.solve ~deadline ?max_conflicts enc.Encode.sat in
              Hca_obs.Obs.count "sat.conflicts" (Sat.conflicts enc.Encode.sat);
              (k, v, enc)))
        ks
    in
    List.iter
      (fun (k, verdict, enc) ->
        (match verdict with
        | Sat.Sat ->
            let a = Encode.decode inst enc in
            (* Independent re-check: the clauses and the cost terms must
               agree on what they bounded. *)
            let got = Encode.cluster_mii_of_assignment inst a in
            if got > k && not strict then
              error :=
                Some
                  (Printf.sprintf
                     "internal: model at k=%d recomputes to cluster MII %d" k
                     got)
            else begin
              (match !best with
              | Some (k', _) when k' <= k -> ()
              | _ -> best := Some (k, a));
              hi := min !hi (k - 1)
            end
        | Sat.Unsat -> lo := max !lo (k + 1)
        | Sat.Unknown -> timed_out := true);
        explored := !explored + Sat.conflicts enc.Encode.sat)
      verdicts
  done;
  let status, final_mii, assignment, ii_used =
    match !best with
    | Some (k, a) ->
        let st = if !lo >= k then Optimal else Feasible in
        (st, Some (max ini k), Some a, k)
    | None ->
        if !error <> None || !timed_out then (Timeout, None, None, 0)
        else (Unsat, None, None, 0)
  in
  {
    status;
    final_mii;
    lower_bound = max ini !lo;
    assignment;
    copies =
      (match !best with
      | Some (_, a) -> Encode.copies_of_assignment inst a
      | None -> 0);
    ii_used;
    explored = !explored;
    runtime_s = Hca_util.Clock.now () -. t0;
    error =
      (match (!error, !timed_out) with
      | (Some _ as e), _ -> e
      | None, true -> Some "search budget exhausted"
      | None, false -> None);
  }

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | Timeout -> "timeout"
  | Unsat -> "unsat"

let pp ppf t =
  Format.fprintf ppf "status=%s final=%s lower>=%d copies=%d conflicts=%d t=%.2fs"
    (status_to_string t.status)
    (match t.final_mii with Some m -> string_of_int m | None -> "-")
    t.lower_bound t.copies t.explored t.runtime_s;
  match t.error with
  | Some e -> Format.fprintf ppf " (%s)" e
  | None -> ()
