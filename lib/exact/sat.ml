(* Incremental MiniSat-style CDCL on a flat data layout.

   Internal literal encoding: variable [v] (0-based) yields literals
   [2v] (positive) and [2v+1] (negative); the external API speaks
   DIMACS ints.

   Clause storage is one packed int arena.  A clause reference [cref]
   is the offset of its header inside the arena:

     arena.(cref)     info word: size lsl 14 | lbd lsl 2 | learnt | deleted
     arena.(cref + 1) birth probe epoch (forwarding pointer during GC)
     arena.(cref + 2 ...)  the literals; slots 0 and 1 are the watched pair

   Watch lists are stride-2 int vectors of (cref, blocker) pairs: the
   blocker is some other literal of the clause, checked before touching
   the arena at all — the common satisfied-clause case costs one array
   read.  Unit clauses are never stored: they become level-0 trail
   entries.  The propagate/analyze hot loop allocates nothing. *)

(* -------- unboxed int vectors -------- *)

module Iv = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let grow v need =
    let cap = max need (max 8 (2 * Array.length v.a)) in
    let a' = Array.make cap 0 in
    Array.blit v.a 0 a' 0 v.n;
    v.a <- a'

  let push v x =
    if v.n = Array.length v.a then grow v (v.n + 1);
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let push2 v x y =
    if v.n + 2 > Array.length v.a then grow v (v.n + 2);
    v.a.(v.n) <- x;
    v.a.(v.n + 1) <- y;
    v.n <- v.n + 2

  let clear v = v.n <- 0
end

type result = Sat | Unsat | Unknown

type t = {
  mutable nvars : int;
  (* clause arena *)
  mutable arena : int array;
  mutable arena_len : int;
  mutable problems : Iv.t;  (* crefs of input clauses, in add order *)
  mutable learnts : Iv.t;  (* crefs of live learnt clauses *)
  mutable watches : Iv.t array;  (* internal literal -> (cref, blocker)* *)
  (* assignment *)
  mutable assigns : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* cref, or -1 for decisions/units *)
  mutable activity : float array;
  mutable polarity : bool array;  (* phase saving: last assigned value *)
  mutable heap : int array;  (* binary max-heap of variables by activity *)
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable heap_size : int;
  mutable trail : int array;  (* internal literals, assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array;  (* trail size at each decision level *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;  (* false once the clause set is trivially unsat *)
  mutable has_model : bool;
  (* scratch *)
  mutable seen : bool array;  (* conflict analysis *)
  mutable lbd_mark : int array;  (* per-level stamp for LBD counting *)
  mutable lbd_epoch : int;
  (* clause-DB reduction policy *)
  mutable reduce_limit : int;
  (* statistics *)
  mutable probe : int;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_props : int;
  mutable n_learnt_total : int;
  mutable n_deleted_total : int;
  mutable n_live_learnt : int;
  mutable n_reused : int;
}

let create ?(reduce_start = 2000) () =
  {
    nvars = 0;
    arena = Array.make 1024 0;
    arena_len = 0;
    problems = Iv.create ();
    learnts = Iv.create ();
    watches = Array.init 16 (fun _ -> Iv.create ());
    assigns = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_size = 0;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    has_model = false;
    seen = Array.make 8 false;
    lbd_mark = Array.make 9 0;
    lbd_epoch = 0;
    reduce_limit = max 16 reduce_start;
    probe = 0;
    n_conflicts = 0;
    n_decisions = 0;
    n_props = 0;
    n_learnt_total = 0;
    n_deleted_total = 0;
    n_live_learnt = 0;
    n_reused = 0;
  }

let nvars t = t.nvars

let conflicts t = t.n_conflicts

let decisions t = t.n_decisions

let propagations t = t.n_props

let learnt_live t = t.n_live_learnt

let learnt_total t = t.n_learnt_total

let deleted_total t = t.n_deleted_total

let reused_hits t = t.n_reused

let probe_id t = t.probe

let new_probe t = t.probe <- t.probe + 1

(* -------- literals -------- *)

let var_of_lit l = l lsr 1

let neg l = l lxor 1

let lit_sign l = l land 1 = 0 (* true = positive *)

let internal t ext =
  if ext = 0 || abs ext > t.nvars then
    invalid_arg (Printf.sprintf "Sat: literal %d out of range" ext);
  let v = abs ext - 1 in
  if ext > 0 then 2 * v else (2 * v) + 1

let external_ l =
  let v = (l lsr 1) + 1 in
  if l land 1 = 0 then v else -v

(* -------- clause header accessors -------- *)

let lbd_cap = 0xfff

let info_make ~size ~lbd ~learnt =
  (size lsl 14) lor (min lbd lbd_cap lsl 2) lor (if learnt then 2 else 0)

let c_size arena cref = arena.(cref) lsr 14

let c_lbd arena cref = (arena.(cref) lsr 2) land lbd_cap

let c_learnt arena cref = arena.(cref) land 2 <> 0

let c_deleted arena cref = arena.(cref) land 1 <> 0

let c_delete arena cref = arena.(cref) <- arena.(cref) lor 1

(* -------- dynamic arrays -------- *)

let grow_to t n =
  let old = Array.length t.assigns in
  if n > old then begin
    let cap = max n (2 * old) in
    let extend a fill = Array.append a (Array.make (cap - Array.length a) fill) in
    t.assigns <- extend t.assigns (-1);
    t.level <- extend t.level 0;
    t.reason <- extend t.reason (-1);
    t.activity <- extend t.activity 0.0;
    t.polarity <- extend t.polarity false;
    t.heap <- extend t.heap 0;
    t.heap_pos <- extend t.heap_pos (-1);
    t.trail <- extend t.trail 0;
    t.trail_lim <- extend t.trail_lim 0;
    t.seen <- extend t.seen false;
    t.lbd_mark <- extend t.lbd_mark 0
  end;
  if 2 * n > Array.length t.watches then begin
    let len = Array.length t.watches in
    let cap = max (4 * n) (2 * len) in
    t.watches <-
      Array.init cap (fun i -> if i < len then t.watches.(i) else Iv.create ())
  end

let ensure_arena t need =
  let cap = Array.length t.arena in
  if t.arena_len + need > cap then begin
    let cap' = ref (max 1024 (2 * cap)) in
    while t.arena_len + need > !cap' do
      cap' := 2 * !cap'
    done;
    let a = Array.make !cap' 0 in
    Array.blit t.arena 0 a 0 t.arena_len;
    t.arena <- a
  end

(* -------- activity heap -------- *)

let heap_lt t a b = t.activity.(a) > t.activity.(b)

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      let vi = t.heap.(i) and vp = t.heap.(p) in
      t.heap.(i) <- vp; t.heap.(p) <- vi;
      t.heap_pos.(vp) <- i; t.heap_pos.(vi) <- p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    let vi = t.heap.(i) and vb = t.heap.(!best) in
    t.heap.(i) <- vb; t.heap.(!best) <- vi;
    t.heap_pos.(vb) <- i; t.heap_pos.(vi) <- !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    let last = t.heap.(t.heap_size) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    heap_down t 0
  end;
  v

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do t.activity.(i) <- t.activity.(i) *. 1e-100 done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* -------- variables -------- *)

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_to t t.nvars;
  heap_insert t v;
  v + 1

(* -------- assignment -------- *)

let lit_value t l =
  (* 1 true / 0 false / -1 unassigned, from the literal's viewpoint *)
  let a = t.assigns.(var_of_lit l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let decision_level t = t.trail_lim_size

let enqueue t l reason =
  let v = var_of_lit l in
  t.assigns.(v) <- (if lit_sign l then 1 else 0);
  t.polarity.(v) <- lit_sign l;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of_lit t.trail.(i) in
      t.assigns.(v) <- -1;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.trail_lim_size <- lvl
  end

(* -------- clause allocation -------- *)

let alloc_clause t lits ~learnt ~lbd =
  let size = Array.length lits in
  ensure_arena t (size + 2);
  let cref = t.arena_len in
  t.arena.(cref) <- info_make ~size ~lbd ~learnt;
  t.arena.(cref + 1) <- t.probe;
  Array.blit lits 0 t.arena (cref + 2) size;
  t.arena_len <- cref + 2 + size;
  cref

(* watches.(l) holds the clauses watching literal [l]; they are visited
   when [l] is falsified.  The companion int is a blocker: any other
   literal of the clause, tested before the arena is touched. *)
let attach t cref =
  let l0 = t.arena.(cref + 2) and l1 = t.arena.(cref + 3) in
  Iv.push2 t.watches.(l0) cref l1;
  Iv.push2 t.watches.(l1) cref l0

(* -------- propagation -------- *)

(* Returns the conflicting cref, or -1.  A learnt clause from an older
   probe epoch that propagates or conflicts counts as a reused hit. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let falsified = neg l in
    let ws = t.watches.(falsified) in
    let arena = t.arena in
    let n = ws.Iv.n in
    let wa = ws.Iv.a in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let cref = wa.(!i) and blocker = wa.(!i + 1) in
      if lit_value t blocker = 1 then begin
        (* Clause satisfied by the blocker: keep, untouched. *)
        wa.(!j) <- cref;
        wa.(!j + 1) <- blocker;
        i := !i + 2;
        j := !j + 2
      end
      else begin
        let base = cref + 2 in
        (* Normalise: the falsified watch sits in slot 1. *)
        if arena.(base) = falsified then begin
          arena.(base) <- arena.(base + 1);
          arena.(base + 1) <- falsified
        end;
        let first = arena.(base) in
        if lit_value t first = 1 then begin
          (* Satisfied by the other watch: keep it as the blocker. *)
          wa.(!j) <- cref;
          wa.(!j + 1) <- first;
          i := !i + 2;
          j := !j + 2
        end
        else begin
          (* Look for a new watchable literal. *)
          let size = c_size arena cref in
          let k = ref 2 in
          while !k < size && lit_value t arena.(base + !k) = 0 do incr k done;
          if !k < size then begin
            (* Move the watch; this clause leaves the current list. *)
            arena.(base + 1) <- arena.(base + !k);
            arena.(base + !k) <- falsified;
            Iv.push2 t.watches.(arena.(base + 1)) cref first;
            i := !i + 2
          end
          else begin
            (* Unit or conflicting. *)
            wa.(!j) <- cref;
            wa.(!j + 1) <- first;
            i := !i + 2;
            j := !j + 2;
            if c_learnt arena cref && arena.(cref + 1) < t.probe then
              t.n_reused <- t.n_reused + 1;
            if lit_value t first = 0 then begin
              (* Conflict: keep the unvisited watchers before bailing. *)
              while !i < n do
                wa.(!j) <- wa.(!i);
                wa.(!j + 1) <- wa.(!i + 1);
                i := !i + 2;
                j := !j + 2
              done;
              confl := cref
            end
            else begin
              t.n_props <- t.n_props + 1;
              enqueue t first cref
            end
          end
        end
      end
    done;
    ws.Iv.n <- !j
  done;
  !confl

(* -------- clauses -------- *)

let add_clause t ext_lits =
  let lits = List.map (internal t) ext_lits in
  if t.ok then begin
    t.has_model <- false;
    (* The API only adds clauses at level 0 (incremental use between
       solves); dedupe and drop clauses with complementary literals. *)
    cancel_until t 0;
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.memq (neg l) lits) lits in
    let lits = List.filter (fun l -> lit_value t l <> 0) lits in
    if not taut then
      if List.exists (fun l -> lit_value t l = 1) lits then ()
      else
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
            enqueue t l (-1);
            if propagate t >= 0 then t.ok <- false
        | _ ->
            let cref = alloc_clause t (Array.of_list lits) ~learnt:false ~lbd:0 in
            Iv.push t.problems cref;
            attach t cref
  end

(* -------- LBD -------- *)

let compute_lbd t lits =
  t.lbd_epoch <- t.lbd_epoch + 1;
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = t.level.(var_of_lit l) in
      if lv > 0 && t.lbd_mark.(lv) <> t.lbd_epoch then begin
        t.lbd_mark.(lv) <- t.lbd_epoch;
        incr n
      end)
    lits;
  !n

(* -------- conflict analysis (first UIP) -------- *)

let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (t.trail_size - 1) in
  let continue = ref true in
  while !continue do
    let c = !confl in
    assert (c >= 0);
    let base = c + 2 in
    let size = c_size t.arena c in
    (* Skip the literal being resolved on ([p]) on continuation rounds. *)
    for qi = 0 to size - 1 do
      let q = t.arena.(base + qi) in
      if q <> !p then begin
        let v = var_of_lit q in
        if (not t.seen.(v)) && t.level.(v) > 0 then begin
          t.seen.(v) <- true;
          bump t v;
          if t.level.(v) >= decision_level t then incr counter
          else learnt := q :: !learnt
        end
      end
    done;
    (* Walk the trail back to the next marked literal. *)
    while not t.seen.(var_of_lit t.trail.(!idx)) do decr idx done;
    let l = t.trail.(!idx) in
    let v = var_of_lit l in
    t.seen.(v) <- false;
    decr idx;
    decr counter;
    if !counter = 0 then begin
      p := neg l;
      continue := false
    end
    else begin
      p := l;
      confl := t.reason.(v)
    end
  done;
  let c = Array.of_list (!p :: !learnt) in
  List.iter (fun l -> t.seen.(var_of_lit l) <- false) !learnt;
  (* Backtrack level: highest level among the non-asserting literals.
     That literal must also sit in watch slot 1, so that both watches
     are the last-falsified literals after the backjump. *)
  let blevel = ref 0 in
  for i = 1 to Array.length c - 1 do
    let lv = t.level.(var_of_lit c.(i)) in
    if lv > !blevel then begin
      blevel := lv;
      let tmp = c.(1) in
      c.(1) <- c.(i);
      c.(i) <- tmp
    end
  done;
  (c, !blevel)

(* -------- clause-DB reduction -------- *)

let locked t cref =
  let v = var_of_lit t.arena.(cref + 2) in
  t.assigns.(v) >= 0 && t.reason.(v) = cref

(* Rebuild the arena from the live clauses, remap reasons through
   forwarding pointers, and reattach every watch list.  Called at any
   decision level: locked clauses are never deleted, so every reason on
   the trail survives. *)
let compact t =
  let needed = ref 0 in
  let count iv =
    for i = 0 to iv.Iv.n - 1 do
      let cref = iv.Iv.a.(i) in
      if not (c_deleted t.arena cref) then
        needed := !needed + c_size t.arena cref + 2
    done
  in
  count t.problems;
  count t.learnts;
  let na = Array.make (max 1024 !needed) 0 in
  let nlen = ref 0 in
  let forward cref =
    let size = c_size t.arena cref in
    let nc = !nlen in
    Array.blit t.arena cref na nc (size + 2);
    nlen := nc + size + 2;
    (* Forwarding pointer for the reason remap below. *)
    t.arena.(cref) <- -1;
    t.arena.(cref + 1) <- nc;
    nc
  in
  let sweep iv =
    let j = ref 0 in
    for i = 0 to iv.Iv.n - 1 do
      let cref = iv.Iv.a.(i) in
      if not (c_deleted t.arena cref) then begin
        iv.Iv.a.(!j) <- forward cref;
        incr j
      end
    done;
    iv.Iv.n <- !j
  in
  sweep t.problems;
  sweep t.learnts;
  t.n_live_learnt <- t.learnts.Iv.n;
  for i = 0 to t.trail_size - 1 do
    let v = var_of_lit t.trail.(i) in
    let r = t.reason.(v) in
    if r >= 0 then begin
      assert (t.arena.(r) = -1);
      t.reason.(v) <- t.arena.(r + 1)
    end
  done;
  t.arena <- na;
  t.arena_len <- !nlen;
  for l = 0 to (2 * t.nvars) - 1 do
    Iv.clear t.watches.(l)
  done;
  let reattach iv =
    for i = 0 to iv.Iv.n - 1 do
      attach t iv.Iv.a.(i)
    done
  in
  reattach t.problems;
  reattach t.learnts

(* Drop the worst half of the deletable learnt clauses: glue clauses
   (LBD <= 3) and locked reasons are kept unconditionally; the rest are
   ranked by LBD with clause age as the deterministic tie-break. *)
let reduce_db t =
  let cand = ref [] in
  let ncand = ref 0 in
  for i = 0 to t.learnts.Iv.n - 1 do
    let cref = t.learnts.Iv.a.(i) in
    if
      (not (c_deleted t.arena cref))
      && c_lbd t.arena cref > 3
      && not (locked t cref)
    then begin
      cand := cref :: !cand;
      incr ncand
    end
  done;
  let cand = Array.of_list !cand in
  Array.sort
    (fun a b ->
      let c = compare (c_lbd t.arena a) (c_lbd t.arena b) in
      if c <> 0 then c else compare a b)
    cand;
  (* Delete the high-LBD half. *)
  let keep = !ncand / 2 in
  for i = keep to !ncand - 1 do
    c_delete t.arena cand.(i);
    t.n_deleted_total <- t.n_deleted_total + 1;
    t.n_live_learnt <- t.n_live_learnt - 1
  done;
  if !ncand > keep then compact t;
  t.reduce_limit <- t.reduce_limit + max 256 (t.reduce_limit / 4)

let clear_learnt t =
  cancel_until t 0;
  (* A learnt clause serving as the reason of a level-0 literal can be
     dropped by orphaning the pointer: conflict analysis never
     dereferences level-0 reasons (its [level > 0] guard), and the
     literal itself stays on the trail. *)
  for i = 0 to t.trail_size - 1 do
    let v = var_of_lit t.trail.(i) in
    let r = t.reason.(v) in
    if r >= 0 && c_learnt t.arena r then t.reason.(v) <- -1
  done;
  let dropped = ref 0 in
  for i = 0 to t.learnts.Iv.n - 1 do
    let cref = t.learnts.Iv.a.(i) in
    if not (c_deleted t.arena cref) then begin
      c_delete t.arena cref;
      incr dropped;
      t.n_deleted_total <- t.n_deleted_total + 1;
      t.n_live_learnt <- t.n_live_learnt - 1
    end
  done;
  if !dropped > 0 then compact t

(* -------- restarts: Luby sequence -------- *)

let rec luby i =
  (* Smallest k with i < 2^k - 1 determines the value. *)
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if i = (1 lsl !k) - 1 then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* -------- search -------- *)

let pick_branch t =
  let rec go () =
    if t.heap_size = 0 then -1
    else
      let v = heap_pop t in
      if t.assigns.(v) < 0 then v else go ()
  in
  go ()

let solve ?(assumptions = []) ?(deadline = infinity) ?max_conflicts t =
  t.has_model <- false;
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    let assumptions = List.map (internal t) assumptions in
    let nassumed = List.length assumptions in
    let budget =
      match max_conflicts with Some b -> t.n_conflicts + b | None -> max_int
    in
    let restart_base = 64 in
    let restart_idx = ref 1 in
    let conflicts_left = ref (restart_base * luby !restart_idx) in
    let result = ref Unknown in
    (try
       while !result = Unknown do
         let confl = propagate t in
         if confl >= 0 then begin
           t.n_conflicts <- t.n_conflicts + 1;
           decr conflicts_left;
           if decision_level t = 0 then begin
             t.ok <- false;
             result := Unsat
           end
           else if decision_level t <= nassumed then
             (* The conflict depends only on assumptions: unsat under
                them, but the clause set itself stays usable. *)
             result := Unsat
           else begin
             let learnt, blevel = analyze t confl in
             (match learnt with
             | [| l |] ->
                 (* A learnt unit is implied by the clause set alone
                    (assumption literals would survive analysis as extra
                    literals), so it is sound — and pays off across
                    probes — to pin it at level 0; the decision loop
                    re-assumes the prefix afterwards. *)
                 cancel_until t 0;
                 enqueue t l (-1)
             | _ ->
                 (* Never backtrack into the assumption prefix. *)
                 let blevel = max blevel nassumed in
                 cancel_until t blevel;
                 let lbd = compute_lbd t learnt in
                 let cref = alloc_clause t learnt ~learnt:true ~lbd in
                 Iv.push t.learnts cref;
                 t.n_learnt_total <- t.n_learnt_total + 1;
                 t.n_live_learnt <- t.n_live_learnt + 1;
                 attach t cref;
                 enqueue t learnt.(0) cref);
             t.var_inc <- t.var_inc /. 0.95;
             if t.n_live_learnt >= t.reduce_limit then reduce_db t;
             if t.n_conflicts land 255 = 0 && Hca_util.Clock.now () > deadline
             then raise Exit;
             if t.n_conflicts >= budget then raise Exit
           end
         end
         else begin
           if !conflicts_left <= 0 then begin
             (* Restart, keeping the assumption prefix semantics: we
                backtrack to 0 and let the decision loop re-assume. *)
             incr restart_idx;
             conflicts_left := restart_base * luby !restart_idx;
             cancel_until t 0
           end;
           (* Re-apply any pending assumption first. *)
           let lvl = decision_level t in
           if lvl < nassumed then begin
             let a = List.nth assumptions lvl in
             match lit_value t a with
             | 1 ->
                 (* Already implied: open an empty decision level so
                    the prefix depth still matches the list index. *)
                 t.trail_lim.(t.trail_lim_size) <- t.trail_size;
                 t.trail_lim_size <- t.trail_lim_size + 1
             | 0 -> result := Unsat
             | _ ->
                 t.trail_lim.(t.trail_lim_size) <- t.trail_size;
                 t.trail_lim_size <- t.trail_lim_size + 1;
                 enqueue t a (-1)
           end
           else begin
             match pick_branch t with
             | -1 ->
                 result := Sat;
                 t.has_model <- true
             | v ->
                 t.n_decisions <- t.n_decisions + 1;
                 t.trail_lim.(t.trail_lim_size) <- t.trail_size;
                 t.trail_lim_size <- t.trail_lim_size + 1;
                 let l = if t.polarity.(v) then 2 * v else (2 * v) + 1 in
                 enqueue t l (-1)
           end
         end
       done
     with Exit -> result := Unknown);
    if !result <> Sat then cancel_until t 0;
    !result
  end

let value t ext =
  if not t.has_model then invalid_arg "Sat.value: no model available";
  let v = abs ext - 1 in
  if ext = 0 || v >= t.nvars then invalid_arg "Sat.value: variable out of range";
  let a = t.assigns.(v) in
  let pos = a = 1 in
  if ext > 0 then pos else not pos

let fold_problem_clauses t f acc =
  let acc = ref acc in
  for i = 0 to t.problems.Iv.n - 1 do
    let cref = t.problems.Iv.a.(i) in
    let base = cref + 2 in
    let size = c_size t.arena cref in
    let lits = List.init size (fun k -> external_ t.arena.(base + k)) in
    acc := f !acc lits
  done;
  !acc

let pp_stats ppf t =
  Format.fprintf ppf
    "vars=%d clauses=%d conflicts=%d decisions=%d props=%d learnt=%d/%d \
     deleted=%d reused=%d"
    t.nvars t.problems.Iv.n t.n_conflicts t.n_decisions t.n_props
    t.n_live_learnt t.n_learnt_total t.n_deleted_total t.n_reused
