(* MiniSat-style CDCL.  Internal literal encoding: variable [v] (0-based)
   yields literals [2v] (positive) and [2v+1] (negative); the external
   API speaks DIMACS ints.  A clause is an int array of internal
   literals whose first two slots are the watched pair. *)

type clause = int array

type result = Sat | Unsat | Unknown

type t = {
  mutable nvars : int;
  mutable clauses : clause list;  (* kept only for Invalid_argument checks *)
  mutable watches : clause list array;  (* indexed by internal literal *)
  mutable assigns : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array;  (* phase saving: last assigned value *)
  mutable heap : int array;  (* binary max-heap of variables by activity *)
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable heap_size : int;
  mutable trail : int array;  (* internal literals, assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array;  (* trail size at each decision level *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;  (* false once the clause set is trivially unsat *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable has_model : bool;
  mutable seen : bool array;  (* scratch for conflict analysis *)
}

let create () =
  {
    nvars = 0;
    clauses = [];
    watches = Array.make 16 [];
    assigns = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_size = 0;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    n_conflicts = 0;
    n_decisions = 0;
    has_model = false;
    seen = Array.make 8 false;
  }

let nvars t = t.nvars

let conflicts t = t.n_conflicts

let decisions t = t.n_decisions

(* -------- literals -------- *)

let var_of_lit l = l lsr 1

let neg l = l lxor 1

let lit_sign l = l land 1 = 0 (* true = positive *)

let internal t ext =
  if ext = 0 || abs ext > t.nvars then
    invalid_arg (Printf.sprintf "Sat: literal %d out of range" ext);
  let v = abs ext - 1 in
  if ext > 0 then 2 * v else (2 * v) + 1

(* -------- dynamic arrays -------- *)

let grow_to t n =
  let old = Array.length t.assigns in
  if n > old then begin
    let cap = max n (2 * old) in
    let extend a fill = Array.append a (Array.make (cap - Array.length a) fill) in
    t.assigns <- extend t.assigns (-1);
    t.level <- extend t.level 0;
    t.reason <- extend t.reason None;
    t.activity <- extend t.activity 0.0;
    t.polarity <- extend t.polarity false;
    t.heap <- extend t.heap 0;
    t.heap_pos <- extend t.heap_pos (-1);
    t.trail <- extend t.trail 0;
    t.trail_lim <- extend t.trail_lim 0;
    t.seen <- extend t.seen false
  end;
  if 2 * n > Array.length t.watches then
    t.watches <- Array.append t.watches
      (Array.make ((4 * n) - Array.length t.watches) [])

(* -------- activity heap -------- *)

let heap_lt t a b = t.activity.(a) > t.activity.(b)

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      let vi = t.heap.(i) and vp = t.heap.(p) in
      t.heap.(i) <- vp; t.heap.(p) <- vi;
      t.heap_pos.(vp) <- i; t.heap_pos.(vi) <- p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    let vi = t.heap.(i) and vb = t.heap.(!best) in
    t.heap.(i) <- vb; t.heap.(!best) <- vi;
    t.heap_pos.(vb) <- i; t.heap_pos.(vi) <- !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    let last = t.heap.(t.heap_size) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    heap_down t 0
  end;
  v

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do t.activity.(i) <- t.activity.(i) *. 1e-100 done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* -------- variables -------- *)

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_to t t.nvars;
  heap_insert t v;
  v + 1

(* -------- assignment -------- *)

let lit_value t l =
  (* 1 true / 0 false / -1 unassigned, from the literal's viewpoint *)
  let a = t.assigns.(var_of_lit l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let decision_level t = t.trail_lim_size

let enqueue t l reason =
  let v = var_of_lit l in
  t.assigns.(v) <- (if lit_sign l then 1 else 0);
  t.polarity.(v) <- lit_sign l;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of_lit t.trail.(i) in
      t.assigns.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.trail_lim_size <- lvl
  end

(* -------- propagation -------- *)

exception Conflict of clause

let propagate t =
  try
    while t.qhead < t.trail_size do
      let l = t.trail.(t.qhead) in
      t.qhead <- t.qhead + 1;
      let falsified = neg l in
      let ws = t.watches.(falsified) in
      t.watches.(falsified) <- [];
      let rec go = function
        | [] -> ()
        | c :: rest -> (
            (* Normalise: the falsified watch sits in slot 1. *)
            if c.(0) = falsified then begin c.(0) <- c.(1); c.(1) <- falsified end;
            if lit_value t c.(0) = 1 then begin
              (* Clause already satisfied by the other watch. *)
              t.watches.(falsified) <- c :: t.watches.(falsified);
              go rest
            end
            else
              (* Look for a new watchable literal. *)
              let n = Array.length c in
              let rec find i =
                if i >= n then -1
                else if lit_value t c.(i) <> 0 then i
                else find (i + 1)
              in
              match find 2 with
              | i when i >= 0 ->
                  c.(1) <- c.(i);
                  c.(i) <- falsified;
                  t.watches.(c.(1)) <- c :: t.watches.(c.(1));
                  go rest
              | _ ->
                  (* Unit or conflicting. *)
                  t.watches.(falsified) <- c :: t.watches.(falsified);
                  if lit_value t c.(0) = 0 then begin
                    (* Put the unvisited watchers back before bailing. *)
                    t.watches.(falsified) <-
                      List.rev_append rest t.watches.(falsified);
                    raise (Conflict c)
                  end
                  else begin
                    enqueue t c.(0) (Some c);
                    go rest
                  end)
      in
      go ws
    done;
    None
  with Conflict c -> Some c

(* -------- clauses -------- *)

(* watches.(l) holds the clauses watching literal [l]; they are visited
   when [l] is falsified. *)
let attach t c =
  t.watches.(c.(0)) <- c :: t.watches.(c.(0));
  t.watches.(c.(1)) <- c :: t.watches.(c.(1))

let add_clause t ext_lits =
  let lits = List.map (internal t) ext_lits in
  if t.ok then begin
    t.has_model <- false;
    (* The API only adds clauses at level 0 (incremental use between
       solves); dedupe and drop clauses with complementary literals. *)
    cancel_until t 0;
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.memq (neg l) lits) lits in
    let lits = List.filter (fun l -> lit_value t l <> 0) lits in
    if not taut then
      if List.exists (fun l -> lit_value t l = 1) lits then ()
      else
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
            enqueue t l None;
            if propagate t <> None then t.ok <- false
        | _ ->
            let c = Array.of_list lits in
            t.clauses <- c :: t.clauses;
            attach t c
  end

(* -------- conflict analysis (first UIP) -------- *)

let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (t.trail_size - 1) in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> assert false
    | Some c ->
        (* Skip c.(0) on learnt-continuation rounds: it is the literal
           being resolved on ([p]). *)
        Array.iter
          (fun q ->
            if q <> !p then begin
              let v = var_of_lit q in
              if (not t.seen.(v)) && t.level.(v) > 0 then begin
                t.seen.(v) <- true;
                bump t v;
                if t.level.(v) >= decision_level t then incr counter
                else learnt := q :: !learnt
              end
            end)
          c);
    (* Walk the trail back to the next marked literal. *)
    while not t.seen.(var_of_lit t.trail.(!idx)) do decr idx done;
    let l = t.trail.(!idx) in
    let v = var_of_lit l in
    t.seen.(v) <- false;
    decr idx;
    decr counter;
    if !counter = 0 then begin
      p := neg l;
      continue := false
    end
    else begin
      p := l;
      confl := t.reason.(v)
    end
  done;
  let c = Array.of_list (!p :: !learnt) in
  List.iter (fun l -> t.seen.(var_of_lit l) <- false) !learnt;
  (* Backtrack level: highest level among the non-asserting literals.
     That literal must also sit in watch slot 1, so that both watches
     are the last-falsified literals after the backjump. *)
  let blevel = ref 0 in
  for i = 1 to Array.length c - 1 do
    let lv = t.level.(var_of_lit c.(i)) in
    if lv > !blevel then begin
      blevel := lv;
      let tmp = c.(1) in
      c.(1) <- c.(i);
      c.(i) <- tmp
    end
  done;
  (c, !blevel)

(* -------- restarts: Luby sequence -------- *)

let rec luby i =
  (* Smallest k with i < 2^k - 1 determines the value. *)
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if i = (1 lsl !k) - 1 then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* -------- search -------- *)

let pick_branch t =
  let rec go () =
    if t.heap_size = 0 then -1
    else
      let v = heap_pop t in
      if t.assigns.(v) < 0 then v else go ()
  in
  go ()

let solve ?(assumptions = []) ?(deadline = infinity) ?max_conflicts t =
  t.has_model <- false;
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    let assumptions = List.map (internal t) assumptions in
    let budget =
      match max_conflicts with Some b -> t.n_conflicts + b | None -> max_int
    in
    let restart_base = 64 in
    let restart_idx = ref 1 in
    let conflicts_left = ref (restart_base * luby !restart_idx) in
    let result = ref Unknown in
    (try
       while !result = Unknown do
         match propagate t with
         | Some confl ->
             t.n_conflicts <- t.n_conflicts + 1;
             decr conflicts_left;
             if decision_level t = 0 then begin
               t.ok <- false;
               result := Unsat
             end
             else if decision_level t <= List.length assumptions then
               (* The conflict depends only on assumptions: unsat under
                  them, but the clause set itself stays usable. *)
               result := Unsat
             else begin
               let learnt, blevel = analyze t confl in
               (* Never backtrack into the assumption prefix. *)
               let blevel = max blevel (List.length assumptions) in
               cancel_until t blevel;
               (match learnt with
               | [| l |] -> enqueue t l None
               | _ ->
                   t.clauses <- learnt :: t.clauses;
                   attach t learnt;
                   enqueue t learnt.(0) (Some learnt));
               t.var_inc <- t.var_inc /. 0.95;
               if t.n_conflicts land 255 = 0 && Hca_util.Clock.now () > deadline then
                 raise Exit;
               if t.n_conflicts >= budget then raise Exit
             end
         | None ->
             if !conflicts_left <= 0 then begin
               (* Restart, keeping the assumption prefix semantics: we
                  backtrack to 0 and let the decision loop re-assume. *)
               incr restart_idx;
               conflicts_left := restart_base * luby !restart_idx;
               cancel_until t 0
             end;
             (* Re-apply any pending assumption first. *)
             let lvl = decision_level t in
             if lvl < List.length assumptions then begin
               let a = List.nth assumptions lvl in
               match lit_value t a with
               | 1 ->
                   (* Already implied: open an empty decision level so
                      the prefix depth still matches the list index. *)
                   t.trail_lim.(t.trail_lim_size) <- t.trail_size;
                   t.trail_lim_size <- t.trail_lim_size + 1
               | 0 -> result := Unsat
               | _ ->
                   t.trail_lim.(t.trail_lim_size) <- t.trail_size;
                   t.trail_lim_size <- t.trail_lim_size + 1;
                   enqueue t a None
             end
             else begin
               match pick_branch t with
               | -1 ->
                   result := Sat;
                   t.has_model <- true
               | v ->
                   t.n_decisions <- t.n_decisions + 1;
                   t.trail_lim.(t.trail_lim_size) <- t.trail_size;
                   t.trail_lim_size <- t.trail_lim_size + 1;
                   let l = if t.polarity.(v) then 2 * v else (2 * v) + 1 in
                   enqueue t l None
             end
       done
     with Exit -> result := Unknown);
    if !result <> Sat then cancel_until t 0;
    !result
  end

let value t ext =
  if not t.has_model then invalid_arg "Sat.value: no model available";
  let v = abs ext - 1 in
  if ext = 0 || v >= t.nvars then invalid_arg "Sat.value: variable out of range";
  let a = t.assigns.(v) in
  let pos = a = 1 in
  if ext > 0 then pos else not pos

let pp_stats ppf t =
  Format.fprintf ppf "vars=%d clauses=%d conflicts=%d decisions=%d" t.nvars
    (List.length t.clauses) t.n_conflicts t.n_decisions
