(** Data Dependency Graph of one loop kernel.

    Nodes are instructions; a directed edge [(src, dst)] means [dst]
    consumes the value produced by [src].  Every edge carries

    - a [latency]: cycles between the issue of [src] and the earliest
      issue of [dst] when both sit on the same cluster (inter-cluster
      copies add their own delay later);
    - a [distance] (the classic modulo-scheduling omega): how many loop
      iterations separate producer and consumer.  [distance = 0] is an
      intra-iteration dependence; [distance > 0] is loop-carried and is
      what creates recurrence circuits bounding the initiation interval.

    The graph restricted to [distance = 0] edges is acyclic (checked by
    {!Builder.freeze}). *)

type edge = {
  src : Instr.id;
  dst : Instr.id;
  latency : int;
  distance : int;
}

type t

(** {1 Construction} *)

module Builder : sig
  type graph = t

  type t

  val create : ?name:string -> unit -> t

  val add_instr : t -> ?name:string -> Opcode.t -> Instr.id
  (** Appends an instruction and returns its id. *)

  val add_dep : ?distance:int -> ?latency:int -> t -> src:Instr.id -> dst:Instr.id -> unit
  (** Adds a dependence edge.  [latency] defaults to the opcode latency
      of [src]; [distance] defaults to [0].
      @raise Invalid_argument on unknown ids, negative distance, or a
      [distance = 0] self-loop. *)

  val freeze : t -> graph
  (** Seals the graph.
      @raise Invalid_argument if the [distance = 0] subgraph has a
      cycle (such a loop body could never be scheduled). *)
end

(** {1 Accessors} *)

val name : t -> string

val with_name : t -> string -> t
(** Same graph under a different name.  The compile service names
    client-supplied kernels by a content digest, so a cross-request
    memo key can trust the name to pin the graph. *)

val size : t -> int
(** Number of instructions. *)

val instr : t -> Instr.id -> Instr.t

val instrs : t -> Instr.t array
(** The node array, indexed by id.  Do not mutate. *)

val edges : t -> edge array

val succs : t -> Instr.id -> edge list
(** Outgoing edges of a node (all distances). *)

val preds : t -> Instr.id -> edge list

val fold_instrs : (Instr.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter_edges : (edge -> unit) -> t -> unit

val count : t -> (Instr.t -> bool) -> int
(** Number of instructions satisfying a predicate. *)

val memory_ops : t -> int
(** Instructions consuming a DMA request port. *)

(** {1 Derived views} *)

val induced : t -> Instr.id list -> t * Instr.id array
(** [induced g ids] is the subgraph induced by [ids] (edges with both
    endpoints inside), plus the mapping from new ids to original ids.
    Instruction names are preserved. *)

val filter_edges : t -> (edge -> bool) -> t
(** [filter_edges g p] rebuilds the graph keeping only the edges
    satisfying [p] (instructions, opcodes and names preserved).  An
    edge subset of a well-formed graph is always well-formed, so this
    never raises; used by the fuzz shrinker. *)

val equal_structure : t -> t -> bool
(** Same instruction opcodes (in id order) and same edge set — used by
    serialisation round-trip tests. *)

val equal_exact : t -> t -> bool
(** {!equal_structure} plus graph and instruction names: the full
    [parse ∘ print = id] contract of {!Ddg_io}. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary listing every instruction with its dependences. *)
