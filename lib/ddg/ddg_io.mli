(** Serialisation of DDGs: a line-oriented text format (round-trippable)
    and Graphviz DOT output for inspection.

    Text format, one record per line, ['#'] comments allowed:
    {v
    ddg <name>
    i <id> <mnemonic> <name>
    e <src> <dst> <latency> <distance>
    v}
    Instruction ids must be dense and in order (the parser checks).
    Names are escaped so that [parse ∘ print = id] holds {e exactly}
    (names included, {!Ddg.equal_exact}): spaces print as ["\_"],
    backslashes double, newline/CR/tab print as ["\n"]/["\r"]/["\t"],
    and an empty name prints as the marker ["\-"].  Files written
    before the escaping (no backslashes) parse unchanged. *)

val escape_name : string -> string
(** The escaping above, reusable by the other line-oriented formats
    ([.machine] files escape names the same way). *)

val unescape_name : string -> string
(** Left inverse of {!escape_name}; identity on backslash-free text. *)

val to_string : Ddg.t -> string

val of_string : string -> (Ddg.t, string) result
(** Error message carries the offending line number. *)

val to_dot : ?cluster_of:(Instr.id -> string option) -> Ddg.t -> string
(** DOT digraph; loop-carried edges are dashed and labelled with their
    distance.  [cluster_of] optionally groups nodes into subgraph
    clusters (used to visualise an assignment). *)

val write_file : string -> Ddg.t -> unit

val read_file : string -> (Ddg.t, string) result
