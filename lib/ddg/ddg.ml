type edge = {
  src : Instr.id;
  dst : Instr.id;
  latency : int;
  distance : int;
}

type t = {
  name : string;
  instrs : Instr.t array;
  edges : edge array;
  succs : edge list array;
  preds : edge list array;
}

(* Cycle check on the distance=0 subgraph: iterative three-colour DFS. *)
let acyclic_intra n succs =
  let state = Array.make n 0 in
  let ok = ref true in
  let rec visit u =
    state.(u) <- 1;
    List.iter
      (fun e ->
        if e.distance = 0 then
          if state.(e.dst) = 1 then ok := false
          else if state.(e.dst) = 0 then visit e.dst)
      succs.(u);
    state.(u) <- 2
  in
  for u = 0 to n - 1 do
    if !ok && state.(u) = 0 then visit u
  done;
  !ok

module Builder = struct
  type graph = t

  type t = {
    bname : string;
    binstrs : Instr.t Hca_util.Vec.t;
    bedges : edge Hca_util.Vec.t;
  }

  let create ?(name = "kernel") () =
    {
      bname = name;
      binstrs = Hca_util.Vec.create ();
      bedges = Hca_util.Vec.create ();
    }

  let add_instr b ?name opcode =
    let id = Hca_util.Vec.length b.binstrs in
    ignore (Hca_util.Vec.push b.binstrs (Instr.make ~id ?name opcode));
    id

  let add_dep ?(distance = 0) ?latency b ~src ~dst =
    let n = Hca_util.Vec.length b.binstrs in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Ddg.Builder.add_dep: unknown instruction id";
    if distance < 0 then invalid_arg "Ddg.Builder.add_dep: negative distance";
    if distance = 0 && src = dst then
      invalid_arg "Ddg.Builder.add_dep: intra-iteration self-loop";
    let latency =
      match latency with
      | Some l ->
          if l < 0 then invalid_arg "Ddg.Builder.add_dep: negative latency";
          l
      | None -> Opcode.latency (Hca_util.Vec.get b.binstrs src).Instr.opcode
    in
    ignore (Hca_util.Vec.push b.bedges { src; dst; latency; distance })

  let freeze b =
    let instrs = Hca_util.Vec.to_array b.binstrs in
    let edges = Hca_util.Vec.to_array b.bedges in
    let n = Array.length instrs in
    let succs = Array.make n [] in
    let preds = Array.make n [] in
    Array.iter
      (fun e ->
        succs.(e.src) <- e :: succs.(e.src);
        preds.(e.dst) <- e :: preds.(e.dst))
      edges;
    (* Restore insertion order, which callers may rely on for determinism. *)
    Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
    Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
    if not (acyclic_intra n succs) then
      invalid_arg "Ddg.Builder.freeze: intra-iteration dependence cycle";
    { name = b.bname; instrs; edges; succs; preds }
end

let name g = g.name

let with_name g name = { g with name }

let size g = Array.length g.instrs

let instr g id =
  if id < 0 || id >= size g then invalid_arg "Ddg.instr: bad id";
  g.instrs.(id)

let instrs g = g.instrs

let edges g = g.edges

let succs g id =
  if id < 0 || id >= size g then invalid_arg "Ddg.succs: bad id";
  g.succs.(id)

let preds g id =
  if id < 0 || id >= size g then invalid_arg "Ddg.preds: bad id";
  g.preds.(id)

let fold_instrs f g acc = Array.fold_left (fun acc i -> f i acc) acc g.instrs

let iter_edges f g = Array.iter f g.edges

let count g p =
  Array.fold_left (fun n i -> if p i then n + 1 else n) 0 g.instrs

let memory_ops g = count g (fun i -> Opcode.is_memory i.Instr.opcode)

let induced g ids =
  let ids = Array.of_list ids in
  let n = size g in
  let new_of_old = Array.make n (-1) in
  Array.iteri
    (fun new_id old_id ->
      if old_id < 0 || old_id >= n then invalid_arg "Ddg.induced: bad id";
      if new_of_old.(old_id) >= 0 then invalid_arg "Ddg.induced: duplicate id";
      new_of_old.(old_id) <- new_id)
    ids;
  let b = Builder.create ~name:(g.name ^ ".sub") () in
  Array.iter
    (fun old_id ->
      let i = g.instrs.(old_id) in
      ignore (Builder.add_instr b ~name:i.Instr.name i.Instr.opcode))
    ids;
  Array.iter
    (fun e ->
      let s = new_of_old.(e.src) and d = new_of_old.(e.dst) in
      if s >= 0 && d >= 0 then
        Builder.add_dep b ~distance:e.distance ~latency:e.latency ~src:s ~dst:d)
    g.edges;
  (Builder.freeze b, ids)

let filter_edges g p =
  let b = Builder.create ~name:g.name () in
  Array.iter
    (fun (i : Instr.t) ->
      ignore (Builder.add_instr b ~name:i.Instr.name i.Instr.opcode))
    g.instrs;
  Array.iter
    (fun e ->
      if p e then
        Builder.add_dep b ~distance:e.distance ~latency:e.latency ~src:e.src
          ~dst:e.dst)
    g.edges;
  Builder.freeze b

let edge_key e = (e.src, e.dst, e.latency, e.distance)

let equal_structure a b =
  size a = size b
  && Array.for_all2
       (fun (x : Instr.t) (y : Instr.t) -> Opcode.equal x.opcode y.opcode)
       a.instrs b.instrs
  && Array.length a.edges = Array.length b.edges
  &&
  let sort es = List.sort compare (List.map edge_key (Array.to_list es)) in
  sort a.edges = sort b.edges

let equal_exact a b =
  a.name = b.name
  && equal_structure a b
  && Array.for_all2
       (fun (x : Instr.t) (y : Instr.t) -> x.name = y.name)
       a.instrs b.instrs

let pp ppf g =
  Format.fprintf ppf "@[<v>ddg %s (%d instrs, %d edges)" g.name (size g)
    (Array.length g.edges);
  Array.iter
    (fun i ->
      Format.fprintf ppf "@,  %a" Instr.pp i;
      List.iter
        (fun e ->
          Format.fprintf ppf " <-%%%d(l%d,d%d)" e.src e.latency e.distance)
        g.preds.(i.Instr.id))
    g.instrs;
  Format.fprintf ppf "@]"
