(* Names are free-form strings; the format is whitespace-separated.  A
   name with a space would be re-parsed as a different name (multiple
   spaces collapse), an empty name as "no name" (re-defaulted to
   ["%<id>"]), so the printer escapes: [' '] -> ["\_"], ['\\'] ->
   ["\\\\"], newline/CR/tab -> ["\n"]/["\r"]/["\t"], and the empty
   name prints as the marker ["\-"].  Legacy files contain no
   backslashes, so unescaping is the identity on them. *)
let escape_name s =
  if s = "" then "\\-"
  else begin
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "\\_"
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape_name s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '_' -> Buffer.add_char buf ' '
       | '\\' -> Buffer.add_char buf '\\'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | '-' -> () (* the empty-name marker contributes nothing *)
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("ddg " ^ escape_name (Ddg.name g) ^ "\n");
  Array.iter
    (fun (i : Instr.t) ->
      Buffer.add_string buf
        (Printf.sprintf "i %d %s %s\n" i.id (Opcode.mnemonic i.opcode)
           (escape_name i.name)))
    (Ddg.instrs g);
  Array.iter
    (fun (e : Ddg.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "e %d %d %d %d\n" e.src e.dst e.latency e.distance))
    (Ddg.edges g);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let b = ref None in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let exception Fail of (Ddg.t, string) result in
  try
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          let fields =
            String.split_on_char ' ' line |> List.filter (fun f -> f <> "")
          in
          match fields with
          | "ddg" :: rest ->
              let name = unescape_name (String.concat " " rest) in
              if !b <> None then
                raise (Fail (err lineno "duplicate ddg header"))
              else b := Some (Ddg.Builder.create ~name ())
          | "i" :: id :: mnem :: rest -> (
              match (!b, int_of_string_opt id, Opcode.of_mnemonic mnem) with
              | None, _, _ -> raise (Fail (err lineno "instr before header"))
              | _, None, _ -> raise (Fail (err lineno "bad instr id"))
              | _, _, None -> raise (Fail (err lineno ("bad opcode " ^ mnem)))
              | Some b, Some id, Some op ->
                  let name =
                    match rest with
                    | [] -> None
                    | _ -> Some (unescape_name (String.concat " " rest))
                  in
                  let got = Ddg.Builder.add_instr b ?name op in
                  if got <> id then
                    raise (Fail (err lineno "non-dense instruction ids")))
          | [ "e"; src; dst; lat; dist ] -> (
              match
                ( !b,
                  int_of_string_opt src,
                  int_of_string_opt dst,
                  int_of_string_opt lat,
                  int_of_string_opt dist )
              with
              | Some b, Some src, Some dst, Some lat, Some dist -> (
                  try Ddg.Builder.add_dep b ~latency:lat ~distance:dist ~src ~dst
                  with Invalid_argument m -> raise (Fail (err lineno m)))
              | None, _, _, _, _ ->
                  raise (Fail (err lineno "edge before header"))
              | _ -> raise (Fail (err lineno "bad edge fields")))
          | _ -> raise (Fail (err lineno ("unrecognised record: " ^ line))))
      lines;
    match !b with
    | None -> Error "empty input: missing ddg header"
    | Some b -> (
        try Ok (Ddg.Builder.freeze b)
        with Invalid_argument m -> Error m)
  with Fail r -> r

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?cluster_of g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (dot_escape (Ddg.name g)));
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  let emit_node (i : Instr.t) =
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n%s\"];\n" i.id (dot_escape i.name)
         (Opcode.mnemonic i.opcode))
  in
  (match cluster_of with
  | None -> Array.iter emit_node (Ddg.instrs g)
  | Some f ->
      let groups = Hashtbl.create 8 in
      Array.iter
        (fun (i : Instr.t) ->
          let key = f i.id in
          let cur = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key (i :: cur))
        (Ddg.instrs g);
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) groups [] |> List.sort compare
      in
      List.iteri
        (fun gi key ->
          let members = List.rev (Hashtbl.find groups key) in
          match key with
          | None -> List.iter emit_node members
          | Some label ->
              Buffer.add_string buf
                (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n"
                   gi (dot_escape label));
              List.iter
                (fun (i : Instr.t) ->
                  Buffer.add_string buf
                    (Printf.sprintf "    n%d [label=\"%s\\n%s\"];\n" i.id
                       (dot_escape i.name)
                       (Opcode.mnemonic i.opcode)))
                members;
              Buffer.add_string buf "  }\n")
        keys);
  Array.iter
    (fun (e : Ddg.edge) ->
      if e.distance = 0 then
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" e.src e.dst)
      else
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [style=dashed, label=\"%d\"];\n" e.src
             e.dst e.distance))
    (Ddg.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
