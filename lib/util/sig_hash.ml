(* FNV-1a over machine words.  OCaml native ints wrap on overflow, so
   the running product stays a well-defined 63-bit mix on every
   platform; the fold order is part of the signature, which is exactly
   what the callers want (placement arrays and flow matrices are
   compared in a canonical iteration order). *)

type t = { mutable h : int }

let offset_basis = 0x3bf29ce484222325 (* FNV offset basis, 62-bit truncation *)

let prime = 0x100000001b3

let create ?(seed = 0) () = { h = offset_basis lxor seed }

let add_int t x =
  (* Mix both halves so small ints still touch the high bits. *)
  t.h <- (t.h lxor (x land 0xffffffff)) * prime;
  t.h <- (t.h lxor ((x lsr 32) land 0x7fffffff)) * prime

let add_bool t b = add_int t (if b then 1 else 0)

let add_float t f = add_int t (Int64.to_int (Int64.bits_of_float f))

let add_int_list t l =
  add_int t (List.length l);
  List.iter (fun x -> add_int t x) l

let add_int_array t a =
  add_int t (Array.length a);
  Array.iter (fun x -> add_int t x) a

let add_string t s =
  add_int t (String.length s);
  String.iter (fun c -> add_int t (Char.code c)) s

let value t = t.h land max_int

let ints l =
  let t = create () in
  add_int_list t l;
  value t
