let now () = Unix.gettimeofday ()
