(** Fixed-size OCaml 5 domain pool (stdlib [Mutex]/[Condition] only —
    no domainslib dependency).

    A pool of [jobs] execution lanes: [jobs - 1] spawned domains plus
    the submitting domain, which helps drain the task queue instead of
    blocking.  At [jobs = 1] no domain is ever spawned and every entry
    point degrades to plain sequential [List.map], so sequential and
    parallel runs share one code path and — because all the search code
    is deterministic — produce bit-identical results: only the wall
    clock changes.

    Results always come back in submission order; an exception raised
    by a task is re-raised in the submitter (lowest submission index
    wins when several tasks fail, so failures are deterministic too). *)

type t

val create : ?dedicated:bool -> jobs:int -> unit -> t
(** Spawns [jobs - 1] worker domains ([jobs] is clamped to [>= 1]).
    With [~dedicated:true] it spawns [jobs] instead: the owner does not
    count as a lane — use this when the owner blocks elsewhere (e.g. a
    server's accept loop) and only feeds the pool via {!submit}.
    The pool must be {!shutdown} before the program exits. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue one task for whichever worker frees up
    first.  The task must not raise (wrap it); there is no completion
    signal — build one from the task body (the daemon's job queue
    does).  {!shutdown} drains every task submitted before it.
    @raise Invalid_argument after shutdown, or on a pool with no
    spawned workers ([create ~jobs:1] without [~dedicated:true] —
    nothing would ever run the task). *)

val jobs : t -> int

val shutdown : t -> unit
(** Joins every worker.  Idempotent.  Call only when no batch is in
    flight. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Executes the thunks on the pool and returns their results in input
    order.  Nested [run] calls on the same pool are safe: the waiting
    submitter executes queued tasks itself rather than deadlocking. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f l = run t (List.map (fun x () -> f x) l)]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** Scoped pool: shutdown is guaranteed, also on exceptions. *)

val parallel_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: order-preserving map over a scoped pool,
    sequential (and allocation-free of domains) when [jobs <= 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)
