(** Run-identification stamps, so bench NDJSON rows and trace files can
    be correlated after the fact. *)

val git_describe : unit -> string
(** [git describe --always --dirty] of the working tree, computed once;
    ["unknown"] when git or the repository is unavailable. *)

val hash : 'a -> string
(** Stable-in-process structural fingerprint as 8 hex digits, for
    tagging rows with the configuration they were produced under. *)

val store_stamp : ?extra:string -> unit -> string
(** Invalidation key of on-disk caches whose entries are only
    meaningful to the code that wrote them: the {!git_describe} of the
    tree plus any caller-supplied [extra] (format version, config
    hash).  A persistent memo store whose recorded stamp differs from
    the current one is discarded as stale, never read. *)
