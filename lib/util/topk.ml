(* Index twin of {!smallest} over a scored batch: [keys.(0..len-1)] are
   the candidate scores, entries with a non-finite key (the batch
   scorer's infeasible sentinel) are skipped.  Same selection contract:
   keys ascending, ties towards the smaller index. *)
let smallest_indices ~k keys ~len =
  if k <= 0 || len <= 0 then []
  else begin
    let cap = k in
    let elems = Array.make cap 0 in
    let sel = Array.make cap infinity in
    let n = ref 0 in
    for i = 0 to len - 1 do
      let kx = keys.(i) in
      if kx = kx && kx <> infinity && kx <> neg_infinity then
        if !n < cap || kx < sel.(!n - 1) then begin
          let stop = if !n < cap then !n else cap - 1 in
          let j = ref stop in
          while !j > 0 && sel.(!j - 1) > kx do
            sel.(!j) <- sel.(!j - 1);
            elems.(!j) <- elems.(!j - 1);
            decr j
          done;
          sel.(!j) <- kx;
          elems.(!j) <- i;
          if !n < cap then incr n
        end
    done;
    Array.to_list (Array.sub elems 0 !n)
  end

let smallest ~k ~key l =
  if k <= 0 then []
  else
    match l with
    | [] -> []
    | [ _ ] -> l
    | x0 :: _ ->
        (* Bounded insertion: [elems.(0..len-1)] holds the best
           candidates so far, keys ascending, ties in input order. *)
        let cap = k in
        let elems = Array.make cap x0 in
        let keys = Array.make cap infinity in
        let len = ref 0 in
        List.iter
          (fun x ->
            let kx = key x in
            if !len < cap || kx < keys.(!len - 1) then begin
              let stop = if !len < cap then !len else cap - 1 in
              (* Shift the strictly-greater tail right; an equal key
                 stays left of the newcomer (stability). *)
              let i = ref stop in
              while !i > 0 && keys.(!i - 1) > kx do
                keys.(!i) <- keys.(!i - 1);
                elems.(!i) <- elems.(!i - 1);
                decr i
              done;
              keys.(!i) <- kx;
              elems.(!i) <- x;
              if !len < cap then incr len
            end)
          l;
        Array.to_list (Array.sub elems 0 !len)
