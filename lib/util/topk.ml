let smallest ~k ~key l =
  if k <= 0 then []
  else
    match l with
    | [] -> []
    | [ _ ] -> l
    | x0 :: _ ->
        (* Bounded insertion: [elems.(0..len-1)] holds the best
           candidates so far, keys ascending, ties in input order. *)
        let cap = k in
        let elems = Array.make cap x0 in
        let keys = Array.make cap infinity in
        let len = ref 0 in
        List.iter
          (fun x ->
            let kx = key x in
            if !len < cap || kx < keys.(!len - 1) then begin
              let stop = if !len < cap then !len else cap - 1 in
              (* Shift the strictly-greater tail right; an equal key
                 stays left of the newcomer (stability). *)
              let i = ref stop in
              while !i > 0 && keys.(!i - 1) > kx do
                keys.(!i) <- keys.(!i - 1);
                elems.(!i) <- elems.(!i - 1);
                decr i
              done;
              keys.(!i) <- kx;
              elems.(!i) <- x;
              if !len < cap then incr len
            end)
          l;
        Array.to_list (Array.sub elems 0 !len)
