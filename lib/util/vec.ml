type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 8) () =
  { data = [||]; len = 0 }
  |> fun v ->
  ignore capacity;
  v

let length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate: bad length";
  v.len <- n

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let copy v = { data = Array.copy v.data; len = v.len }

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v = Array.to_list (to_array v)
