(** Incremental FNV-1a signature hashing over machine words.

    Used to fingerprint search states (placement + copy flow) for the
    SEE's transposition dedup and to canonicalise subproblem memo keys.
    A signature is a plain [int]: equal structures always hash equal,
    so a hash mismatch proves two structures differ; a hash match is
    confirmed by a structural comparison before anything is dropped. *)

type t

val create : ?seed:int -> unit -> t

val add_int : t -> int -> unit

val add_bool : t -> bool -> unit

val add_float : t -> float -> unit
(** Hashes the IEEE bit pattern, so signatures distinguish exactly the
    floats that bit-identical search results distinguish. *)

val add_int_list : t -> int list -> unit
(** Length-prefixed, so [[1];[2]] and [[1;2]] never collide. *)

val add_int_array : t -> int array -> unit

val add_string : t -> string -> unit
(** Length-prefixed over the bytes — unlike [Hashtbl.hash], which
    samples a bounded prefix, every byte participates; used to digest
    client-supplied kernel text into a cache-safe name. *)

val value : t -> int
(** The accumulated signature, non-negative. *)

val ints : int list -> int
(** One-shot convenience: signature of an int list. *)
