(* Fixed-width bitset over [Bytes].  The SEE hot path uses these for
   touched-cluster dedup and candidate masks, so every operation below
   is allocation-free after [create] (except [copy]/[to_list]). *)

type t = {
  width : int;
  bits : Bytes.t;
}

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; bits = Bytes.make ((width + 7) lsr 3) '\000' }

let length t = t.width

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits b) land lnot (1 lsl (i land 7))))

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let reset t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let copy t = { t with bits = Bytes.copy t.bits }

let equal a b = a.width = b.width && Bytes.equal a.bits b.bits

(* Kernighan popcount per byte; widths here are tens of bits, so a
   lookup table would be over-engineering. *)
let popcount_byte c =
  let x = ref c and n = ref 0 in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr n
  done;
  !n

let cardinal t =
  let n = ref 0 in
  for b = 0 to Bytes.length t.bits - 1 do
    n := !n + popcount_byte (Char.code (Bytes.unsafe_get t.bits b))
  done;
  !n

let inter_count a b =
  if a.width <> b.width then invalid_arg "Bitset.inter_count: width mismatch";
  let n = ref 0 in
  for i = 0 to Bytes.length a.bits - 1 do
    n :=
      !n
      + popcount_byte
          (Char.code (Bytes.unsafe_get a.bits i)
          land Char.code (Bytes.unsafe_get b.bits i))
  done;
  !n

let iter f t =
  for b = 0 to Bytes.length t.bits - 1 do
    let c = Char.code (Bytes.unsafe_get t.bits b) in
    if c <> 0 then
      for o = 0 to 7 do
        if c land (1 lsl o) <> 0 then f ((b lsl 3) lor o)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i l -> i :: l) t [])
