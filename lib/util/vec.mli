(** Growable array, used by graph builders before freezing into fixed
    arrays.  Indices are dense and stable: [push] returns the index of the
    new element and indices are never reused. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val clear : 'a t -> unit
(** Drops every element (O(1); the backing store is retained, so a
    cleared vector refills without reallocating). *)

val truncate : 'a t -> int -> unit
(** [truncate v n] drops every element past index [n-1].
    @raise Invalid_argument when [n] exceeds the current length. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument when empty. *)

val copy : 'a t -> 'a t
(** Independent copy; used when cloning owners of per-state vectors. *)

(** [to_array v] copies the contents into a fresh fixed array. *)
val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
