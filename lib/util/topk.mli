(** Stable top-k selection.

    The SEE used to materialise each frontier with a full
    [List.sort] only to keep its first [beam_width] elements;
    selection does the same in O(n·k) with a k-slot insertion buffer
    and no intermediate lists. *)

val smallest : k:int -> key:('a -> float) -> 'a list -> 'a list
(** The [k] elements of the list with the smallest keys, ascending, ties
    resolved towards earlier input positions — element for element the
    same list as
    [List.filteri (fun i _ -> i < k)
       (List.sort (fun a b -> compare (key a) (key b)) l)],
    which is what the SEE's beam and candidate cuts previously
    computed. *)

val smallest_indices : k:int -> float array -> len:int -> int list
(** [smallest_indices ~k keys ~len] is the index twin of {!smallest}
    for a batch-scored candidate array: the indices [i < len] whose
    [keys.(i)] are the [k] smallest, keys ascending, ties towards the
    smaller index.  Entries with a non-finite key ([nan]/[infinity] —
    the batch scorer's infeasible sentinel) are skipped entirely. *)
