type task = Run of (unit -> unit) | Quit

type t = {
  jobs : int;
  mutex : Mutex.t;
  todo : task Queue.t;
  wake : Condition.t;  (* a task was queued *)
  settled : Condition.t;  (* a batch task completed *)
  mutable workers : unit Domain.t list;
  mutable live : bool;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.todo do
    Condition.wait t.wake t.mutex
  done;
  let task = Queue.pop t.todo in
  Mutex.unlock t.mutex;
  match task with
  | Quit -> ()
  | Run f ->
      f ();
      worker_loop t

let create ?(dedicated = false) ~jobs () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      todo = Queue.create ();
      wake = Condition.create ();
      settled = Condition.create ();
      workers = [];
      live = true;
    }
  in
  (* Batch pools count the submitting domain as a lane; a dedicated pool
     serves [submit]ted tasks while the owner does something else (the
     daemon's accept loop), so every lane must be a spawned domain. *)
  let spawned = if dedicated then jobs else jobs - 1 in
  t.workers <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  Mutex.lock t.mutex;
  let accepted = t.live && t.workers <> [] in
  if accepted then begin
    Queue.push (Run f) t.todo;
    Condition.signal t.wake
  end;
  Mutex.unlock t.mutex;
  if not accepted then
    invalid_arg "Domain_pool.submit: pool is shut down or has no workers"

let jobs t = t.jobs

let shutdown t =
  if t.live then begin
    t.live <- false;
    Mutex.lock t.mutex;
    List.iter (fun _ -> Queue.push Quit t.todo) t.workers;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let run (type b) (t : t) (thunks : (unit -> b) list) : b list =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when t.workers = [] -> List.map (fun f -> f ()) thunks
  | _ ->
      let n = List.length thunks in
      let results : b option array = Array.make n None in
      (* Lowest-index failure wins, so a raised exception does not depend
         on which worker finished first. *)
      let error = ref None in
      let pending = ref n in
      let finish i outcome =
        Mutex.lock t.mutex;
        (match outcome with
        | Ok v -> results.(i) <- Some v
        | Error (e, bt) -> (
            match !error with
            | Some (j, _, _) when j < i -> ()
            | _ -> error := Some (i, e, bt)));
        decr pending;
        if !pending = 0 then Condition.broadcast t.settled;
        Mutex.unlock t.mutex
      in
      let task i f () =
        match f () with
        | v -> finish i (Ok v)
        | exception e -> finish i (Error (e, Printexc.get_raw_backtrace ()))
      in
      Mutex.lock t.mutex;
      List.iteri (fun i f -> Queue.push (Run (task i f)) t.todo) thunks;
      Condition.broadcast t.wake;
      (* The submitting domain helps drain the queue (its own batch or a
         nested one) instead of idling, then sleeps until the last
         straggler settles. *)
      let rec drive () =
        if !pending > 0 then
          if not (Queue.is_empty t.todo) then begin
            match Queue.pop t.todo with
            | Quit ->
                (* Shutdown raced a live batch: leave the poison pill for
                   an actual worker. *)
                Queue.push Quit t.todo;
                Condition.wait t.settled t.mutex;
                drive ()
            | Run f ->
                Mutex.unlock t.mutex;
                f ();
                Mutex.lock t.mutex;
                drive ()
          end
          else begin
            Condition.wait t.settled t.mutex;
            drive ()
          end
      in
      drive ();
      Mutex.unlock t.mutex;
      (match !error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)

let map t f l = run t (List.map (fun x () -> f x) l)

let with_pool ~jobs fn =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> fn t)

let parallel_map ~jobs f l =
  match l with
  | [] -> []
  | _ when jobs <= 1 -> List.map f l
  | _ -> with_pool ~jobs:(min jobs (List.length l)) (fun t -> map t f l)
