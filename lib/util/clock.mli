(** Wall-clock time for runtime reporting and deadlines.

    [Sys.time] measures per-process CPU time, which advances [jobs]
    times faster than real time once the domain pool is busy: a 10 s
    SAT budget would silently shrink to 2.5 s at [jobs = 4].  Every
    runtime figure and deadline in the code base goes through this
    module instead. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)
