(** Fixed-width mutable bitset backed by [Bytes].

    Built for the SEE hot path: membership masks over small id spaces
    (PG nodes, clusters) where [set]/[clear]/[mem] must be
    allocation-free and a whole-set [reset] must be a single
    [Bytes.fill].  All indices are bounds-checked; width is fixed at
    [create]. *)

type t

val create : int -> t
(** [create width] is the empty set over [0 .. width-1]. *)

val length : t -> int
(** The fixed width. *)

val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

val reset : t -> unit
(** Clears every bit. *)

val copy : t -> t

val equal : t -> t -> bool

val cardinal : t -> int
(** Number of set bits. *)

val inter_count : t -> t -> int
(** [cardinal] of the intersection, without materialising it.
    @raise Invalid_argument on width mismatch. *)

val iter : (int -> unit) -> t -> unit
(** Calls [f] on every member, ascending. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over members, ascending. *)

val to_list : t -> int list
(** Members ascending; test/debug convenience. *)
