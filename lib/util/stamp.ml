let git_describe =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some v -> v
    | None ->
        let v =
          match
            let ic =
              Unix.open_process_in "git describe --always --dirty 2>/dev/null"
            in
            let line = try input_line ic with End_of_file -> "" in
            (Unix.close_process_in ic, line)
          with
          | Unix.WEXITED 0, line when line <> "" -> line
          | _ -> "unknown"
          | exception _ -> "unknown"
        in
        memo := Some v;
        v

let hash v = Printf.sprintf "%08x" (Hashtbl.hash v land 0xffffffff)

(* Memo entries embed solver-internal structures, so any code change
   can silently change their meaning: the store key ties a file to the
   exact tree that wrote it.  [extra] folds in caller state that must
   also invalidate (e.g. a store-format bump). *)
let store_stamp ?(extra = "") () =
  Printf.sprintf "hca-store:%s:%s" (git_describe ()) extra
